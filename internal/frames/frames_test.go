package frames

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	data := Encode(f)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(%v): %v", f.FrameType(), err)
	}
	if got.FrameType() != f.FrameType() {
		t.Fatalf("type = %v, want %v", got.FrameType(), f.FrameType())
	}
	return got
}

func TestMkAddr(t *testing.T) {
	a := MkAddr(0xa0, 7)
	b := MkAddr(0xa0, 7)
	c := MkAddr(0xa0, 8)
	if a != b {
		t.Error("MkAddr not deterministic")
	}
	if a == c {
		t.Error("different ids should differ")
	}
	if a[0]&0x01 != 0 {
		t.Error("address must be unicast")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestRTSRoundTrip(t *testing.T) {
	f := &RTS{Duration: 123 * time.Microsecond, RA: MkAddr(1, 2), TA: MkAddr(3, 4)}
	got := roundTrip(t, f).(*RTS)
	if !reflect.DeepEqual(f, got) {
		t.Errorf("got %+v, want %+v", got, f)
	}
}

func TestCTSRoundTrip(t *testing.T) {
	f := &CTS{Duration: 99 * time.Microsecond, RA: MkAddr(5, 6)}
	got := roundTrip(t, f).(*CTS)
	if !reflect.DeepEqual(f, got) {
		t.Errorf("got %+v, want %+v", got, f)
	}
}

func TestAckRoundTrip(t *testing.T) {
	f := &Ack{Duration: 0, RA: MkAddr(7, 8)}
	got := roundTrip(t, f).(*Ack)
	if !reflect.DeepEqual(f, got) {
		t.Errorf("got %+v, want %+v", got, f)
	}
}

func TestBlockAckRoundTrip(t *testing.T) {
	f := &BlockAck{
		Duration: 44 * time.Microsecond,
		RA:       MkAddr(1, 1), TA: MkAddr(2, 2),
		StartSeq: 1000, Bitmap: 0xdeadbeefcafe,
	}
	got := roundTrip(t, f).(*BlockAck)
	if !reflect.DeepEqual(f, got) {
		t.Errorf("got %+v, want %+v", got, f)
	}
	if !got.Acked(1) || got.Acked(0) {
		// 0xfe has bit0=0, bit1=1
		t.Errorf("Acked bits wrong: %x", got.Bitmap)
	}
	if got.Acked(64) {
		t.Error("offset ≥64 must be false")
	}
}

func TestQoSDataRoundTrip(t *testing.T) {
	f := &QoSData{
		Duration: 500 * time.Microsecond,
		RA:       MkAddr(9, 1), TA: MkAddr(9, 2),
		Seq: 321, TID: 5, GroupID: 12,
		Payload: []byte("MIDAS payload"),
	}
	got := roundTrip(t, f).(*QoSData)
	if !reflect.DeepEqual(f, got) {
		t.Errorf("got %+v, want %+v", got, f)
	}
}

func TestQoSDataEmptyPayload(t *testing.T) {
	f := &QoSData{RA: MkAddr(1, 1), TA: MkAddr(1, 2), Payload: nil}
	got := roundTrip(t, f).(*QoSData)
	if len(got.Payload) != 0 {
		t.Errorf("payload = %v", got.Payload)
	}
}

func TestQoSNullRoundTrip(t *testing.T) {
	f := &QoSNull{Duration: 10 * time.Microsecond, RA: MkAddr(3, 3), TA: MkAddr(4, 4), TID: 7}
	got := roundTrip(t, f).(*QoSNull)
	if !reflect.DeepEqual(f, got) {
		t.Errorf("got %+v, want %+v", got, f)
	}
}

func TestNDPARoundTrip(t *testing.T) {
	f := &NDPA{
		Duration: 200 * time.Microsecond,
		RA:       Broadcast, TA: MkAddr(0xa0, 1),
		Token: 42,
		STAs: []STAInfo{
			{AID: 1, Feedback: 1},
			{AID: 2, Feedback: 1},
			{AID: 3, Feedback: 0},
		},
	}
	got := roundTrip(t, f).(*NDPA)
	if !reflect.DeepEqual(f, got) {
		t.Errorf("got %+v, want %+v", got, f)
	}
}

func TestNDPAEmptySTAList(t *testing.T) {
	f := &NDPA{RA: Broadcast, TA: MkAddr(1, 1)}
	got := roundTrip(t, f).(*NDPA)
	if len(got.STAs) != 0 {
		t.Errorf("STAs = %v", got.STAs)
	}
}

func TestNDPRoundTrip(t *testing.T) {
	f := &NDP{Duration: 40 * time.Microsecond, TA: MkAddr(0xa0, 2), Streams: 4}
	got := roundTrip(t, f).(*NDP)
	if got.TA != f.TA || got.Streams != 4 || got.Duration != f.Duration {
		t.Errorf("got %+v, want %+v", got, f)
	}
}

func TestGroupIDRoundTrip(t *testing.T) {
	f := &GroupID{
		Duration: 32 * time.Microsecond,
		RA:       MkAddr(2, 9), TA: MkAddr(0xa0, 3),
		Group: 5, Position: 2,
	}
	got := roundTrip(t, f).(*GroupID)
	if !reflect.DeepEqual(f, got) {
		t.Errorf("got %+v, want %+v", got, f)
	}
}

func TestBFReportRoundTrip(t *testing.T) {
	f := &BFReport{
		Duration: 150 * time.Microsecond,
		RA:       MkAddr(0xa0, 1), TA: MkAddr(2, 1),
		Token: 42, NRows: 1, NCols: 4,
		Entries: []complex128{
			complex(1.25e-4, -3.5e-5),
			complex(-2e-6, 7e-6),
			complex(0, 0),
			complex(9.99e-4, 1e-9),
		},
	}
	got := roundTrip(t, f).(*BFReport)
	if got.Token != 42 || got.NRows != 1 || got.NCols != 4 {
		t.Fatalf("header fields wrong: %+v", got)
	}
	if !f.CloseTo(got, MaxEntryError()) {
		t.Errorf("entries drifted beyond fixed-point error: %v vs %v", got.Entries, f.Entries)
	}
	if got.EntryAt(0, 3) != got.Entries[3] {
		t.Error("EntryAt wrong")
	}
}

func TestDurationClamping(t *testing.T) {
	f := &RTS{Duration: time.Second, RA: MkAddr(1, 1), TA: MkAddr(2, 2)}
	got := roundTrip(t, f).(*RTS)
	if got.Duration != maxDuration {
		t.Errorf("Duration = %v, want clamp to %v", got.Duration, maxDuration)
	}
	f2 := &RTS{Duration: -5 * time.Microsecond, RA: MkAddr(1, 1), TA: MkAddr(2, 2)}
	if got := roundTrip(t, f2).(*RTS); got.Duration != 0 {
		t.Errorf("negative duration should clamp to 0, got %v", got.Duration)
	}
}

func TestDecodeRejectsBadFCS(t *testing.T) {
	data := Encode(&CTS{RA: MkAddr(1, 1)})
	data[3] ^= 0xff
	if _, err := Decode(data); err != ErrBadFCS {
		t.Errorf("err = %v, want ErrBadFCS", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
	// Valid FCS over a too-short RTS body.
	body := []byte{fcTypeControl | fcSubRTS, 0, 0, 0}
	data := Encode(frameBytes(body))
	if _, err := Decode(data); err == nil {
		t.Error("expected error for truncated RTS body")
	}
}

// frameBytes wraps raw bytes as a Frame for constructing corrupt inputs.
type rawFrame []byte

func frameBytes(b []byte) Frame                 { return rawFrame(b) }
func (r rawFrame) FrameType() Type              { return Type(255) }
func (r rawFrame) Dur() time.Duration           { return 0 }
func (r rawFrame) AppendTo(b []byte) []byte     { return append(b, r...) }
func (r rawFrame) decodeFrom(body []byte) error { return nil }

func TestDecodeUnknownSubtype(t *testing.T) {
	body := make([]byte, 16)
	body[0] = fcTypeControl | 0x00 // bogus subtype
	if _, err := Decode(Encode(frameBytes(body))); err == nil {
		t.Error("expected unknown-subtype error")
	}
}

func TestAggregateDeaggregate(t *testing.T) {
	m1 := Encode(&QoSData{RA: MkAddr(1, 1), TA: MkAddr(1, 2), Seq: 1, Payload: []byte("one")})
	m2 := Encode(&QoSData{RA: MkAddr(1, 1), TA: MkAddr(1, 2), Seq: 2, Payload: []byte("two two")})
	m3 := Encode(&Ack{RA: MkAddr(1, 2)})
	am, err := Aggregate(m1, m2, m3)
	if err != nil {
		t.Fatal(err)
	}
	if len(am)%4 != 0 {
		t.Error("A-MPDU not 4-byte aligned")
	}
	got := Deaggregate(am)
	if len(got) != 3 {
		t.Fatalf("got %d MPDUs, want 3", len(got))
	}
	if !bytes.Equal(got[0], m1) || !bytes.Equal(got[1], m2) || !bytes.Equal(got[2], m3) {
		t.Error("MPDU bytes corrupted")
	}
}

func TestDeaggregateSkipsCorruptMPDU(t *testing.T) {
	m1 := Encode(&Ack{RA: MkAddr(1, 1)})
	m2 := Encode(&Ack{RA: MkAddr(1, 2)})
	am, _ := Aggregate(m1, m2)
	// Corrupt the first MPDU's payload (after its 4-byte delimiter).
	am[6] ^= 0xff
	got := Deaggregate(am)
	if len(got) != 2 {
		t.Fatalf("got %d MPDUs, want 2", len(got))
	}
	if got[0] != nil {
		t.Error("corrupt MPDU should be nil placeholder")
	}
	if !bytes.Equal(got[1], m2) {
		t.Error("second MPDU should survive")
	}
}

func TestDeaggregateResyncsAfterDelimiterCorruption(t *testing.T) {
	m1 := Encode(&Ack{RA: MkAddr(1, 1)})
	m2 := Encode(&Ack{RA: MkAddr(1, 2)})
	am, _ := Aggregate(m1, m2)
	am[3] = 0 // destroy first delimiter signature
	got := Deaggregate(am)
	// First MPDU is lost entirely, second recovered by scanning.
	if len(got) != 1 || !bytes.Equal(got[0], m2) {
		t.Errorf("resync failed: got %d MPDUs", len(got))
	}
}

func TestAggregateRejectsOversize(t *testing.T) {
	if _, err := Aggregate(make([]byte, 0x4000)); err == nil {
		t.Error("expected oversize error")
	}
}

func TestParserMatchesDecode(t *testing.T) {
	var p Parser
	inputs := []Frame{
		&RTS{Duration: 10 * time.Microsecond, RA: MkAddr(1, 1), TA: MkAddr(1, 2)},
		&CTS{Duration: 20 * time.Microsecond, RA: MkAddr(1, 3)},
		&Ack{RA: MkAddr(1, 4)},
		&BlockAck{RA: MkAddr(1, 5), TA: MkAddr(1, 6), StartSeq: 9, Bitmap: 3},
		&QoSData{RA: MkAddr(1, 7), TA: MkAddr(1, 8), Seq: 77, TID: 3, Payload: []byte("x")},
		&QoSNull{RA: MkAddr(1, 9), TA: MkAddr(2, 0), TID: 1},
		&NDPA{RA: Broadcast, TA: MkAddr(2, 1), Token: 9, STAs: []STAInfo{{AID: 4, Feedback: 1}}},
		&NDP{TA: MkAddr(2, 2), Streams: 4},
		&GroupID{RA: MkAddr(2, 3), TA: MkAddr(2, 4), Group: 1, Position: 3},
		&BFReport{RA: MkAddr(2, 5), TA: MkAddr(2, 6), NRows: 1, NCols: 2, Entries: []complex128{1e-5, 2e-5i}},
	}
	for _, in := range inputs {
		data := Encode(in)
		viaDecode, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: %v", in.FrameType(), err)
		}
		viaParser, err := p.Parse(data)
		if err != nil {
			t.Fatalf("%v parser: %v", in.FrameType(), err)
		}
		if viaParser.FrameType() != viaDecode.FrameType() {
			t.Errorf("parser type %v != decode type %v", viaParser.FrameType(), viaDecode.FrameType())
		}
		if viaParser.Dur() != viaDecode.Dur() {
			t.Errorf("%v: parser dur %v != decode dur %v", in.FrameType(), viaParser.Dur(), viaDecode.Dur())
		}
	}
}

func TestParserRejectsBadFCS(t *testing.T) {
	var p Parser
	data := Encode(&Ack{RA: MkAddr(1, 1)})
	data[0] ^= 0x01
	if _, err := p.Parse(data); err != ErrBadFCS {
		t.Errorf("err = %v, want ErrBadFCS", err)
	}
}

func TestCRC8KnownProperties(t *testing.T) {
	// Different inputs should (almost always) give different CRCs.
	a := crc8([]byte{0x10, 0x00})
	b := crc8([]byte{0x11, 0x00})
	if a == b {
		t.Error("CRC8 collision on adjacent inputs")
	}
	// Deterministic.
	if crc8([]byte{1, 2}) != crc8([]byte{1, 2}) {
		t.Error("CRC8 not deterministic")
	}
}

// Property: every QoSData round-trips exactly through Encode/Decode.
func TestQoSDataRoundTripProperty(t *testing.T) {
	f := func(seq uint16, tid, gid uint8, payload []byte) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		in := &QoSData{
			RA: MkAddr(1, 1), TA: MkAddr(1, 2),
			Seq: seq & 0x0fff, TID: tid & 0x0f, GroupID: gid,
			Payload: payload,
		}
		out, err := Decode(Encode(in))
		if err != nil {
			return false
		}
		q := out.(*QoSData)
		return q.Seq == in.Seq && q.TID == in.TID && q.GroupID == in.GroupID &&
			bytes.Equal(q.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Decode never panics on arbitrary input.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("Decode panicked")
			}
		}()
		_, _ = Decode(data)
		var p Parser
		_, _ = p.Parse(data)
		_ = Deaggregate(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeQoSData(b *testing.B) {
	f := &QoSData{RA: MkAddr(1, 1), TA: MkAddr(1, 2), Payload: make([]byte, 1500)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(f)
	}
}

func BenchmarkParserQoSData(b *testing.B) {
	data := Encode(&QoSData{RA: MkAddr(1, 1), TA: MkAddr(1, 2), Payload: make([]byte, 1500)})
	var p Parser
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}
