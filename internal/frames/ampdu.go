package frames

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// A-MPDU aggregation: 802.11ac sends every data PPDU as an aggregate of
// MPDU subframes, each preceded by a 4-byte delimiter carrying the MPDU
// length and a delimiter CRC-8, padded to 4-byte boundaries. This file
// implements aggregation and (robust, resynchronising) deaggregation in
// the gopacket serialize-buffer style.

// delimiter layout: EOF(1) | reserved(1) | length(14) | crc8 | signature.
const delimSignature = 0x4e // 'N', as in the standard

// crc8 implements the CRC-8 used by A-MPDU delimiters (x^8+x^2+x+1).
func crc8(data []byte) byte {
	crc := byte(0xff)
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return ^crc
}

// Aggregate packs encoded MPDUs (as produced by Encode) into one A-MPDU.
func Aggregate(mpdus ...[]byte) ([]byte, error) {
	var out []byte
	for i, m := range mpdus {
		if len(m) > 0x3fff {
			return nil, fmt.Errorf("frames: MPDU %d too long (%d bytes)", i, len(m))
		}
		var d [4]byte
		binary.LittleEndian.PutUint16(d[0:], uint16(len(m))) // 14-bit length
		d[2] = crc8(d[0:2])
		d[3] = delimSignature
		out = append(out, d[:]...)
		out = append(out, m...)
		for len(out)%4 != 0 {
			out = append(out, 0)
		}
	}
	return out, nil
}

// Deaggregate splits an A-MPDU into its MPDUs, skipping corrupt
// delimiters by scanning for the signature byte (the standard's
// resynchronisation rule). MPDUs with bad FCS are returned as nil
// placeholders so the caller can count losses positionally.
func Deaggregate(ampdu []byte) [][]byte {
	var out [][]byte
	i := 0
	for i+4 <= len(ampdu) {
		if ampdu[i+3] != delimSignature || crc8(ampdu[i:i+2]) != ampdu[i+2] {
			i++ // resync scan
			continue
		}
		n := int(binary.LittleEndian.Uint16(ampdu[i:]) & 0x3fff)
		start := i + 4
		if start+n > len(ampdu) {
			break
		}
		mpdu := ampdu[start : start+n]
		if validFCS(mpdu) {
			out = append(out, mpdu)
		} else {
			out = append(out, nil)
		}
		i = start + n
		for i%4 != 0 {
			i++
		}
	}
	return out
}

func validFCS(mpdu []byte) bool {
	if len(mpdu) < 4 {
		return false
	}
	body := mpdu[:len(mpdu)-4]
	return crc32.ChecksumIEEE(body) == binary.LittleEndian.Uint32(mpdu[len(mpdu)-4:])
}

// Parser is a preallocated decoder in the style of gopacket's
// DecodingLayerParser: it decodes into caller-owned frame values, avoiding
// per-frame allocations on the hot path of the MAC simulator.
type Parser struct {
	rts   RTS
	cts   CTS
	ack   Ack
	back  BlockAck
	data  QoSData
	null  QoSNull
	ndpa  NDPA
	ndp   NDP
	bf    BFReport
	group GroupID
}

// Parse decodes data (with FCS) into one of the parser's preallocated
// frames and returns it. The returned Frame is owned by the Parser and
// valid until the next Parse call.
func (p *Parser) Parse(data []byte) (Frame, error) {
	if len(data) < 6 {
		return nil, ErrTruncated
	}
	body := data[:len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, ErrBadFCS
	}
	fc := body[0]
	var f Frame
	switch fc & 0x0c {
	case fcTypeControl:
		switch fc & 0xf0 {
		case fcSubRTS:
			f = &p.rts
		case fcSubCTS:
			f = &p.cts
		case fcSubAck:
			f = &p.ack
		case fcSubBlockAck:
			f = &p.back
		case fcSubNDPA:
			f = &p.ndpa
		default:
			return nil, fmt.Errorf("frames: unknown control subtype %#x", fc&0xf0)
		}
	case fcTypeData:
		switch fc & 0xf0 {
		case fcSubQoSData:
			f = &p.data
		case fcSubQoSNull:
			f = &p.null
		default:
			return nil, fmt.Errorf("frames: unknown data subtype %#x", fc&0xf0)
		}
	case fcTypeMgmt:
		if len(body) < 26 {
			return nil, ErrTruncated
		}
		switch body[25] {
		case actionCompressedBF:
			f = &p.bf
		case actionGroupID:
			f = &p.group
		case actionNDPMarker:
			f = &p.ndp
		default:
			return nil, fmt.Errorf("frames: unknown VHT action %d", body[25])
		}
	default:
		return nil, fmt.Errorf("frames: unknown frame type %#x", fc&0x0c)
	}
	if err := f.decodeFrom(body); err != nil {
		return nil, err
	}
	return f, nil
}
