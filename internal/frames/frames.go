// Package frames implements an 802.11 frame codec in the style of
// gopacket: each frame type is a Layer with AppendTo serialisation and a
// Decode path that validates the FCS and dispatches on the frame-control
// field. The MAC simulator exchanges real encoded frames, so NAV values
// come from decoded Duration fields exactly as they would on the air.
//
// The set covers what the MIDAS MAC needs (§3.2–3.3): RTS/CTS, ACK and
// Block ACK, QoS Data (with EDCA TID), VHT NDP Announcement + NDP for
// sounding, the compressed beamforming report carrying quantised CSI
// feedback, and Group ID management for MU-MIMO addressing.
package frames

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/cmplx"
	"time"
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

// Broadcast is the all-ones address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// MkAddr builds a deterministic address from a role byte and an id,
// useful for simulated stations (e.g. MkAddr(0xAP, 3)).
func MkAddr(role byte, id uint32) Addr {
	var a Addr
	a[0] = 0x02 // locally administered, unicast
	a[1] = role
	binary.BigEndian.PutUint32(a[2:], id)
	return a
}

// String implements fmt.Stringer.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Type identifies a frame variant understood by this codec.
type Type uint8

// Frame type identifiers.
const (
	TypeRTS Type = iota
	TypeCTS
	TypeAck
	TypeBlockAck
	TypeQoSData
	TypeQoSNull
	TypeNDPA
	TypeNDP
	TypeBFReport
	TypeGroupID
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeRTS:
		return "RTS"
	case TypeCTS:
		return "CTS"
	case TypeAck:
		return "Ack"
	case TypeBlockAck:
		return "BlockAck"
	case TypeQoSData:
		return "QoSData"
	case TypeQoSNull:
		return "QoSNull"
	case TypeNDPA:
		return "NDPAnnouncement"
	case TypeNDP:
		return "NDP"
	case TypeBFReport:
		return "BeamformingReport"
	case TypeGroupID:
		return "GroupIDMgmt"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// 802.11 frame-control constants (type << 2 | subtype << 4, little end).
const (
	fcTypeMgmt    = 0x00
	fcTypeControl = 0x04
	fcTypeData    = 0x08

	fcSubRTS      = 0xb0
	fcSubCTS      = 0xc0
	fcSubAck      = 0xd0
	fcSubBlockAck = 0x90
	fcSubNDPA     = 0x50
	fcSubQoSData  = 0x80
	fcSubQoSNull  = 0xc0
	fcSubAction   = 0xd0
)

// vht category/action codes for management Action frames.
const (
	catVHT             = 21
	actionCompressedBF = 0
	actionGroupID      = 1
	// actionNDPMarker is a codec-internal action code marking the NDP
	// (which on the air is pure preamble with no MAC body).
	actionNDPMarker = 0x7f
)

// Frame is one 802.11 frame understood by this codec.
type Frame interface {
	// FrameType returns the codec type tag.
	FrameType() Type
	// Dur returns the Duration/ID field value — the NAV reservation this
	// frame announces to third parties.
	Dur() time.Duration
	// AppendTo appends the frame body (without FCS) to b and returns the
	// extended slice.
	AppendTo(b []byte) []byte
	// decodeFrom parses the frame from body bytes (without FCS).
	decodeFrom(body []byte) error
}

// ErrTruncated is returned for frames shorter than their fixed header.
var ErrTruncated = errors.New("frames: truncated frame")

// ErrBadFCS is returned when the trailing CRC-32 does not match.
var ErrBadFCS = errors.New("frames: FCS mismatch")

// maxDuration is the largest encodable Duration/ID value (15 bits, µs).
const maxDuration = 32767 * time.Microsecond

func putDuration(b []byte, d time.Duration) {
	us := d / time.Microsecond
	if us < 0 {
		us = 0
	}
	if us > 32767 {
		us = 32767
	}
	binary.LittleEndian.PutUint16(b, uint16(us))
}

func getDuration(b []byte) time.Duration {
	return time.Duration(binary.LittleEndian.Uint16(b)&0x7fff) * time.Microsecond
}

// Encode serialises a frame and appends the 4-byte FCS.
func Encode(f Frame) []byte {
	body := f.AppendTo(nil)
	fcs := crc32.ChecksumIEEE(body)
	return binary.LittleEndian.AppendUint32(body, fcs)
}

// Decode verifies the FCS and parses the frame.
func Decode(data []byte) (Frame, error) {
	if len(data) < 6 { // FC(2) + FCS(4)
		return nil, ErrTruncated
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, ErrBadFCS
	}
	return decodeBody(body)
}

func decodeBody(body []byte) (Frame, error) {
	fc := body[0]
	var f Frame
	switch fc & 0x0c {
	case fcTypeControl:
		switch fc & 0xf0 {
		case fcSubRTS:
			f = &RTS{}
		case fcSubCTS:
			f = &CTS{}
		case fcSubAck:
			f = &Ack{}
		case fcSubBlockAck:
			f = &BlockAck{}
		case fcSubNDPA:
			f = &NDPA{}
		default:
			return nil, fmt.Errorf("frames: unknown control subtype %#x", fc&0xf0)
		}
	case fcTypeData:
		switch fc & 0xf0 {
		case fcSubQoSData:
			f = &QoSData{}
		case fcSubQoSNull:
			f = &QoSNull{}
		default:
			return nil, fmt.Errorf("frames: unknown data subtype %#x", fc&0xf0)
		}
	case fcTypeMgmt:
		if fc&0xf0 != fcSubAction {
			return nil, fmt.Errorf("frames: unknown mgmt subtype %#x", fc&0xf0)
		}
		if len(body) < 26 {
			return nil, ErrTruncated
		}
		switch body[24] {
		case catVHT:
			switch body[25] {
			case actionCompressedBF:
				f = &BFReport{}
			case actionGroupID:
				f = &GroupID{}
			case actionNDPMarker:
				f = &NDP{}
			default:
				return nil, fmt.Errorf("frames: unknown VHT action %d", body[25])
			}
		default:
			return nil, fmt.Errorf("frames: unknown action category %d", body[24])
		}
	default:
		return nil, fmt.Errorf("frames: unknown frame type %#x", fc&0x0c)
	}
	if err := f.decodeFrom(body); err != nil {
		return nil, err
	}
	return f, nil
}

// RTS is a request-to-send control frame (20 bytes on air).
type RTS struct {
	Duration time.Duration
	RA, TA   Addr
}

// FrameType implements Frame.
func (*RTS) FrameType() Type { return TypeRTS }

// Dur implements Frame.
func (f *RTS) Dur() time.Duration { return f.Duration }

// AppendTo implements Frame.
func (f *RTS) AppendTo(b []byte) []byte {
	var hdr [16]byte
	hdr[0] = fcTypeControl | fcSubRTS
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], f.RA[:])
	copy(hdr[10:], f.TA[:])
	return append(b, hdr[:]...)
}

func (f *RTS) decodeFrom(body []byte) error {
	if len(body) < 16 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.RA[:], body[4:])
	copy(f.TA[:], body[10:])
	return nil
}

// CTS is a clear-to-send control frame (14 bytes on air).
type CTS struct {
	Duration time.Duration
	RA       Addr
}

// FrameType implements Frame.
func (*CTS) FrameType() Type { return TypeCTS }

// Dur implements Frame.
func (f *CTS) Dur() time.Duration { return f.Duration }

// AppendTo implements Frame.
func (f *CTS) AppendTo(b []byte) []byte {
	var hdr [10]byte
	hdr[0] = fcTypeControl | fcSubCTS
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], f.RA[:])
	return append(b, hdr[:]...)
}

func (f *CTS) decodeFrom(body []byte) error {
	if len(body) < 10 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.RA[:], body[4:])
	return nil
}

// Ack is a normal acknowledgement (14 bytes on air).
type Ack struct {
	Duration time.Duration
	RA       Addr
}

// FrameType implements Frame.
func (*Ack) FrameType() Type { return TypeAck }

// Dur implements Frame.
func (f *Ack) Dur() time.Duration { return f.Duration }

// AppendTo implements Frame.
func (f *Ack) AppendTo(b []byte) []byte {
	var hdr [10]byte
	hdr[0] = fcTypeControl | fcSubAck
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], f.RA[:])
	return append(b, hdr[:]...)
}

func (f *Ack) decodeFrom(body []byte) error {
	if len(body) < 10 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.RA[:], body[4:])
	return nil
}

// BlockAck acknowledges an A-MPDU with a 64-frame bitmap.
type BlockAck struct {
	Duration time.Duration
	RA, TA   Addr
	StartSeq uint16
	Bitmap   uint64
}

// FrameType implements Frame.
func (*BlockAck) FrameType() Type { return TypeBlockAck }

// Dur implements Frame.
func (f *BlockAck) Dur() time.Duration { return f.Duration }

// AppendTo implements Frame.
func (f *BlockAck) AppendTo(b []byte) []byte {
	var hdr [26]byte
	hdr[0] = fcTypeControl | fcSubBlockAck
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], f.RA[:])
	copy(hdr[10:], f.TA[:])
	binary.LittleEndian.PutUint16(hdr[16:], f.StartSeq)
	binary.LittleEndian.PutUint64(hdr[18:], f.Bitmap)
	return append(b, hdr[:]...)
}

func (f *BlockAck) decodeFrom(body []byte) error {
	if len(body) < 26 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.RA[:], body[4:])
	copy(f.TA[:], body[10:])
	f.StartSeq = binary.LittleEndian.Uint16(body[16:])
	f.Bitmap = binary.LittleEndian.Uint64(body[18:])
	return nil
}

// Acked reports whether the frame at startSeq+offset was acknowledged.
func (f *BlockAck) Acked(offset uint) bool {
	if offset >= 64 {
		return false
	}
	return f.Bitmap&(1<<offset) != 0
}

// QoSData is an EDCA data frame (§3.3: 802.11ac reuses 802.11e's four
// access-category queues for MU-MIMO). GroupID carries the VHT MU group
// the PPDU was precoded for.
type QoSData struct {
	Duration time.Duration
	RA, TA   Addr
	Seq      uint16
	TID      uint8 // traffic class, 0–7 (AC = TID>>1 per 802.11e mapping)
	GroupID  uint8
	Payload  []byte
}

// FrameType implements Frame.
func (*QoSData) FrameType() Type { return TypeQoSData }

// Dur implements Frame.
func (f *QoSData) Dur() time.Duration { return f.Duration }

// AppendTo implements Frame.
func (f *QoSData) AppendTo(b []byte) []byte {
	var hdr [28]byte
	hdr[0] = fcTypeData | fcSubQoSData
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], f.RA[:])
	copy(hdr[10:], f.TA[:])
	copy(hdr[16:], f.TA[:]) // addr3 = BSSID = TA for AP-originated frames
	binary.LittleEndian.PutUint16(hdr[22:], f.Seq<<4)
	hdr[24] = f.TID & 0x0f // QoS control
	hdr[25] = f.GroupID
	binary.LittleEndian.PutUint16(hdr[26:], uint16(len(f.Payload)))
	b = append(b, hdr[:]...)
	return append(b, f.Payload...)
}

func (f *QoSData) decodeFrom(body []byte) error {
	if len(body) < 28 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.RA[:], body[4:])
	copy(f.TA[:], body[10:])
	f.Seq = binary.LittleEndian.Uint16(body[22:]) >> 4
	f.TID = body[24] & 0x0f
	f.GroupID = body[25]
	n := int(binary.LittleEndian.Uint16(body[26:]))
	if len(body) < 28+n {
		return ErrTruncated
	}
	f.Payload = append([]byte(nil), body[28:28+n]...)
	return nil
}

// QoSNull is a data frame with no payload, used for NAV maintenance.
type QoSNull struct {
	Duration time.Duration
	RA, TA   Addr
	TID      uint8
}

// FrameType implements Frame.
func (*QoSNull) FrameType() Type { return TypeQoSNull }

// Dur implements Frame.
func (f *QoSNull) Dur() time.Duration { return f.Duration }

// AppendTo implements Frame.
func (f *QoSNull) AppendTo(b []byte) []byte {
	var hdr [26]byte
	hdr[0] = fcTypeData | fcSubQoSNull
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], f.RA[:])
	copy(hdr[10:], f.TA[:])
	copy(hdr[16:], f.TA[:])
	hdr[24] = f.TID & 0x0f
	return append(b, hdr[:]...)
}

func (f *QoSNull) decodeFrom(body []byte) error {
	if len(body) < 26 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.RA[:], body[4:])
	copy(f.TA[:], body[10:])
	f.TID = body[24] & 0x0f
	return nil
}

// STAInfo identifies one sounding target inside an NDP announcement.
type STAInfo struct {
	AID      uint16 // association ID
	Feedback uint8  // 0 = SU, 1 = MU feedback requested
}

// NDPA is the VHT NDP Announcement control frame that starts a sounding
// exchange (§3.3 channel estimation).
type NDPA struct {
	Duration time.Duration
	RA, TA   Addr
	Token    uint8
	STAs     []STAInfo
}

// FrameType implements Frame.
func (*NDPA) FrameType() Type { return TypeNDPA }

// Dur implements Frame.
func (f *NDPA) Dur() time.Duration { return f.Duration }

// AppendTo implements Frame.
func (f *NDPA) AppendTo(b []byte) []byte {
	var hdr [17]byte
	hdr[0] = fcTypeControl | fcSubNDPA
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], f.RA[:])
	copy(hdr[10:], f.TA[:])
	hdr[16] = f.Token
	b = append(b, hdr[:]...)
	b = append(b, byte(len(f.STAs)))
	for _, s := range f.STAs {
		b = binary.LittleEndian.AppendUint16(b, s.AID&0x0fff)
		b = append(b, s.Feedback)
	}
	return b
}

func (f *NDPA) decodeFrom(body []byte) error {
	if len(body) < 18 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.RA[:], body[4:])
	copy(f.TA[:], body[10:])
	f.Token = body[16]
	n := int(body[17])
	if len(body) < 18+3*n {
		return ErrTruncated
	}
	f.STAs = make([]STAInfo, n)
	for i := 0; i < n; i++ {
		off := 18 + 3*i
		f.STAs[i] = STAInfo{
			AID:      binary.LittleEndian.Uint16(body[off:]) & 0x0fff,
			Feedback: body[off+2],
		}
	}
	return nil
}

// NDP marks the null data packet that follows an NDPA. On the air it is
// pure VHT preamble with no MAC body; the codec carries it as a marker
// frame so the simulator can schedule and account for its airtime.
type NDP struct {
	Duration time.Duration
	TA       Addr
	Streams  uint8 // number of space-time streams sounded
}

// FrameType implements Frame.
func (*NDP) FrameType() Type { return TypeNDP }

// Dur implements Frame.
func (f *NDP) Dur() time.Duration { return f.Duration }

// AppendTo implements Frame.
func (f *NDP) AppendTo(b []byte) []byte {
	var hdr [27]byte
	hdr[0] = fcTypeMgmt | fcSubAction
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], Broadcast[:])
	copy(hdr[10:], f.TA[:])
	copy(hdr[16:], f.TA[:])
	hdr[24] = catVHT
	hdr[25] = actionNDPMarker
	hdr[26] = f.Streams
	return append(b, hdr[:]...)
}

func (f *NDP) decodeFrom(body []byte) error {
	if len(body) < 27 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.TA[:], body[10:])
	f.Streams = body[26]
	return nil
}

// GroupID is the VHT Group ID Management action frame assigning a client
// its position within an MU-MIMO group.
type GroupID struct {
	Duration time.Duration
	RA, TA   Addr
	Group    uint8
	Position uint8
}

// FrameType implements Frame.
func (*GroupID) FrameType() Type { return TypeGroupID }

// Dur implements Frame.
func (f *GroupID) Dur() time.Duration { return f.Duration }

// AppendTo implements Frame.
func (f *GroupID) AppendTo(b []byte) []byte {
	var hdr [28]byte
	hdr[0] = fcTypeMgmt | fcSubAction
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], f.RA[:])
	copy(hdr[10:], f.TA[:])
	copy(hdr[16:], f.TA[:])
	hdr[24] = catVHT
	hdr[25] = actionGroupID
	hdr[26] = f.Group
	hdr[27] = f.Position
	return append(b, hdr[:]...)
}

func (f *GroupID) decodeFrom(body []byte) error {
	if len(body) < 28 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.RA[:], body[4:])
	copy(f.TA[:], body[10:])
	f.Group = body[26]
	f.Position = body[27]
	return nil
}

// BFReport is the VHT compressed beamforming action frame carrying the
// client's quantised channel estimate back to the AP. Real 802.11ac
// compresses V-matrix Givens angles; this codec quantises magnitude and
// phase per matrix entry instead (same behavioural role — lossy,
// bounded-size CSI feedback; see internal/phy.Sounding).
type BFReport struct {
	Duration time.Duration
	RA, TA   Addr
	Token    uint8
	NRows    uint8 // clients' receive antennas (rows of the fed-back H)
	NCols    uint8 // AP transmit antennas
	// Entries holds quantised complex channel entries, row-major.
	Entries []complex128
}

// FrameType implements Frame.
func (*BFReport) FrameType() Type { return TypeBFReport }

// Dur implements Frame.
func (f *BFReport) Dur() time.Duration { return f.Duration }

// bfScale converts a float64 in a ±1e6 range to a 32-bit fixed point.
// Channel amplitudes in this simulator are ≤1e-2 (sqrt of path gain), so
// scaling by 2^40 keeps ~7 significant digits.
const bfScale = 1 << 40

// AppendTo implements Frame.
func (f *BFReport) AppendTo(b []byte) []byte {
	var hdr [29]byte
	hdr[0] = fcTypeMgmt | fcSubAction
	putDuration(hdr[2:], f.Duration)
	copy(hdr[4:], f.RA[:])
	copy(hdr[10:], f.TA[:])
	copy(hdr[16:], f.TA[:])
	hdr[24] = catVHT
	hdr[25] = actionCompressedBF
	hdr[26] = f.Token
	hdr[27] = f.NRows
	hdr[28] = f.NCols
	b = append(b, hdr[:]...)
	for _, e := range f.Entries {
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(real(e)*bfScale)))
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(imag(e)*bfScale)))
	}
	return b
}

func (f *BFReport) decodeFrom(body []byte) error {
	if len(body) < 29 {
		return ErrTruncated
	}
	f.Duration = getDuration(body[2:])
	copy(f.RA[:], body[4:])
	copy(f.TA[:], body[10:])
	f.Token = body[26]
	f.NRows = body[27]
	f.NCols = body[28]
	n := int(f.NRows) * int(f.NCols)
	if len(body) < 29+16*n {
		return ErrTruncated
	}
	f.Entries = make([]complex128, n)
	for i := 0; i < n; i++ {
		off := 29 + 16*i
		re := float64(int64(binary.LittleEndian.Uint64(body[off:]))) / bfScale
		im := float64(int64(binary.LittleEndian.Uint64(body[off+8:]))) / bfScale
		f.Entries[i] = complex(re, im)
	}
	return nil
}

// MaxEntryError returns the worst-case absolute error the fixed-point
// wire format introduces for entries of the given magnitude.
func MaxEntryError() float64 { return math.Sqrt2 / bfScale }

// EntryAt returns the fed-back channel entry for row r, column c.
func (f *BFReport) EntryAt(r, c int) complex128 {
	return f.Entries[r*int(f.NCols)+c]
}

// CloseTo reports whether two reports carry the same dimensions and
// entries within tol.
func (f *BFReport) CloseTo(g *BFReport, tol float64) bool {
	if f.NRows != g.NRows || f.NCols != g.NCols || len(f.Entries) != len(g.Entries) {
		return false
	}
	for i := range f.Entries {
		if cmplx.Abs(f.Entries[i]-g.Entries[i]) > tol {
			return false
		}
	}
	return true
}
