// Package core implements the MIDAS access point's MAC-layer logic — the
// paper's §3.2 contribution — and the conventional CAS baseline it is
// evaluated against:
//
//   - virtual packet tagging: every queued packet carries its client's two
//     best antennas by long-term RSSI (§3.2.4);
//   - opportunistic antenna selection: when one antenna wins the channel,
//     wait up to a DIFS for other antennas whose NAVs are about to expire
//     (§3.2.3);
//   - antenna-specific, fairness-driven client selection with deficit
//     round robin (§3.2.5);
//   - the per-TXOP MU-MIMO pipeline of §3.2.1 (sounding → power-balanced
//     precoding → counter updates) expressed as a testable policy layer
//     that the network simulator (internal/sim) drives with events.
package core

import (
	"time"
)

// Packet is one queued downlink MPDU.
type Packet struct {
	Client   int
	TID      uint8
	Size     int   // payload bytes
	Tags     []int // preferred antennas (global indices), §3.2.4
	Enqueued time.Duration
	Seq      uint16
}

// Queue is the AP's downlink packet store: per-client FIFOs, with the
// 802.11e access-category split handled by the caller keeping one Queue
// per AC if desired. It supports the tag-filtered peeks MIDAS's client
// selection needs.
type Queue struct {
	fifos map[int][]Packet
	size  int
	seq   uint16
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{fifos: map[int][]Packet{}} }

// Push appends a packet to its client's FIFO, assigning a sequence number.
func (q *Queue) Push(p Packet) {
	p.Seq = q.seq
	q.seq = (q.seq + 1) & 0x0fff
	q.fifos[p.Client] = append(q.fifos[p.Client], p)
	q.size++
}

// Len returns the total number of queued packets.
func (q *Queue) Len() int { return q.size }

// LenFor returns the number of packets queued for one client.
func (q *Queue) LenFor(client int) int { return len(q.fifos[client]) }

// Head returns the head-of-line packet for a client without removing it.
func (q *Queue) Head(client int) (Packet, bool) {
	f := q.fifos[client]
	if len(f) == 0 {
		return Packet{}, false
	}
	return f[0], true
}

// Pop removes and returns the head-of-line packet for a client.
func (q *Queue) Pop(client int) (Packet, bool) {
	f := q.fifos[client]
	if len(f) == 0 {
		return Packet{}, false
	}
	p := f[0]
	q.fifos[client] = f[1:]
	q.size--
	return p, true
}

// Backlogged returns the clients with at least one queued packet, in
// ascending client order (deterministic).
func (q *Queue) Backlogged() []int {
	var out []int
	max := -1
	for c, f := range q.fifos {
		if len(f) > 0 && c > max {
			max = c
		}
	}
	for c := 0; c <= max; c++ {
		if len(q.fifos[c]) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// EligibleFor returns the backlogged clients whose head-of-line packet is
// tagged with the given antenna — the tag filter of §3.2.4. A packet with
// no tags is eligible on every antenna (the CAS behaviour).
func (q *Queue) EligibleFor(antenna int) []int {
	var out []int
	for _, c := range q.Backlogged() {
		p, _ := q.Head(c)
		if len(p.Tags) == 0 {
			out = append(out, c)
			continue
		}
		for _, tag := range p.Tags {
			if tag == antenna {
				out = append(out, c)
				break
			}
		}
	}
	return out
}
