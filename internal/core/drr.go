package core

import (
	"math"
	"time"
)

// DRR implements the deficit-round-robin fairness accounting of §3.2.5,
// tailored for MU-MIMO: each client carries a deficit counter measuring
// pending service. On a TXOP of length T serving n clients, each served
// client's counter is decremented by T, and each backlogged-but-unserved
// client's counter is incremented by n·T/m (m = number of such clients) —
// distributing the consumed airtime over the clients that were passed
// over, steering future selections toward fairness.
type DRR struct {
	deficit map[int]float64 // in seconds of owed service
}

// NewDRR returns an empty deficit table.
func NewDRR() *DRR { return &DRR{deficit: map[int]float64{}} }

// Deficit returns a client's current counter (0 for unknown clients).
func (d *DRR) Deficit(client int) float64 { return d.deficit[client] }

// Select returns the eligible client with the largest deficit counter,
// breaking ties by lowest client index for determinism. ok is false when
// the eligible set is empty.
func (d *DRR) Select(eligible []int) (client int, ok bool) {
	best, bestDef := -1, math.Inf(-1)
	for _, c := range eligible {
		def := d.deficit[c]
		if def > bestDef || (def == bestDef && (best == -1 || c < best)) {
			best, bestDef = c, def
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Charge applies the §3.2.5 counter updates after a TXOP of length txop:
// served clients pay txop each; the unserved backlogged clients split the
// total service n·txop equally.
func (d *DRR) Charge(served, backlogged []int, txop time.Duration) {
	t := txop.Seconds()
	isServed := map[int]bool{}
	for _, c := range served {
		isServed[c] = true
		d.deficit[c] -= t
	}
	var unserved []int
	for _, c := range backlogged {
		if !isServed[c] {
			unserved = append(unserved, c)
		}
	}
	if len(unserved) == 0 {
		return
	}
	share := float64(len(served)) * t / float64(len(unserved))
	for _, c := range unserved {
		d.deficit[c] += share
	}
}

// Reset clears all counters.
func (d *DRR) Reset() { d.deficit = map[int]float64{} }

// Scheduler selects one client for an antenna from an eligible set.
// MIDAS uses DRR; the ablations swap in round-robin and random policies.
type Scheduler interface {
	// Pick chooses a client from eligible (never empty); the MU-MIMO
	// driver guarantees the same client is not offered twice in one TXOP.
	Pick(eligible []int) int
	// Charge records TXOP accounting (no-op for stateless policies).
	Charge(served, backlogged []int, txop time.Duration)
}

// DRRScheduler adapts DRR to the Scheduler interface.
type DRRScheduler struct{ D *DRR }

// NewDRRScheduler returns a DRR-backed scheduler.
func NewDRRScheduler() *DRRScheduler { return &DRRScheduler{D: NewDRR()} }

// Pick implements Scheduler.
func (s *DRRScheduler) Pick(eligible []int) int {
	c, _ := s.D.Select(eligible)
	return c
}

// Charge implements Scheduler.
func (s *DRRScheduler) Charge(served, backlogged []int, txop time.Duration) {
	s.D.Charge(served, backlogged, txop)
}

// RoundRobinScheduler cycles through clients in index order.
type RoundRobinScheduler struct{ last int }

// NewRoundRobinScheduler returns a round-robin scheduler.
func NewRoundRobinScheduler() *RoundRobinScheduler { return &RoundRobinScheduler{last: -1} }

// Pick implements Scheduler: the next eligible client strictly after the
// previously picked index, wrapping around.
func (s *RoundRobinScheduler) Pick(eligible []int) int {
	best := -1
	for _, c := range eligible {
		if c > s.last && (best == -1 || c < best) {
			best = c
		}
	}
	if best == -1 { // wrap
		for _, c := range eligible {
			if best == -1 || c < best {
				best = c
			}
		}
	}
	s.last = best
	return best
}

// Charge implements Scheduler (stateless).
func (s *RoundRobinScheduler) Charge(served, backlogged []int, txop time.Duration) {}

// RandomScheduler picks uniformly using the provided Intn function — the
// baseline for the Fig 14 packet-tagging comparison.
type RandomScheduler struct{ Intn func(int) int }

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(eligible []int) int {
	return eligible[s.Intn(len(eligible))]
}

// Charge implements Scheduler (stateless).
func (s *RandomScheduler) Charge(served, backlogged []int, txop time.Duration) {}
