package core

import (
	"reflect"
	"testing"

	"repro/internal/mac"
)

func TestBackloggedByAC(t *testing.T) {
	q := NewQueue()
	q.Push(Packet{Client: 0, TID: 6}) // voice
	q.Push(Packet{Client: 1, TID: 5}) // video
	q.Push(Packet{Client: 2, TID: 0}) // best effort
	q.Push(Packet{Client: 3, TID: 1}) // background
	byAC := q.BackloggedByAC()
	if !reflect.DeepEqual(byAC[mac.ACVoice], []int{0}) {
		t.Errorf("voice = %v", byAC[mac.ACVoice])
	}
	if !reflect.DeepEqual(byAC[mac.ACVideo], []int{1}) {
		t.Errorf("video = %v", byAC[mac.ACVideo])
	}
	if !reflect.DeepEqual(byAC[mac.ACBestEffort], []int{2}) {
		t.Errorf("BE = %v", byAC[mac.ACBestEffort])
	}
	if !reflect.DeepEqual(byAC[mac.ACBackground], []int{3}) {
		t.Errorf("BK = %v", byAC[mac.ACBackground])
	}
}

func TestPrimaryACPriorityOrder(t *testing.T) {
	q := NewQueue()
	if _, ok := q.PrimaryAC(); ok {
		t.Error("empty queue should have no primary AC")
	}
	q.Push(Packet{Client: 0, TID: 1}) // background
	if ac, ok := q.PrimaryAC(); !ok || ac != mac.ACBackground {
		t.Errorf("primary = %v", ac)
	}
	q.Push(Packet{Client: 1, TID: 0}) // best effort outranks background
	if ac, _ := q.PrimaryAC(); ac != mac.ACBestEffort {
		t.Errorf("primary = %v, want AC_BE", ac)
	}
	q.Push(Packet{Client: 2, TID: 6}) // voice outranks all
	if ac, _ := q.PrimaryAC(); ac != mac.ACVoice {
		t.Errorf("primary = %v, want AC_VO", ac)
	}
}

func TestSelectClientsEDCAPrimaryFirst(t *testing.T) {
	c := newTestController()
	rssi := fakeRSSI{
		{0, 100}: 9, {0, 101}: 8, {0, 102}: 1, {0, 103}: 1,
		{1, 100}: 8, {1, 101}: 9, {1, 102}: 1, {1, 103}: 1,
	}
	// Client 0 queues a background packet, client 1 a voice packet; both
	// tag antennas 100/101.
	c.Enqueue(Packet{Client: 0, TID: 1, Size: 100}, rssi)
	c.Enqueue(Packet{Client: 1, TID: 6, Size: 100}, rssi)
	// With voice primary, antenna 100 must serve the voice client first
	// even though the background client has equal standing otherwise.
	clients := c.SelectClientsEDCA([]int{100, 101}, mac.ACVoice)
	if len(clients) != 2 {
		t.Fatalf("clients = %v", clients)
	}
	if clients[0] != 1 {
		t.Errorf("first pick = %d, want voice client 1", clients[0])
	}
	if clients[1] != 0 {
		t.Errorf("second pick = %d, want secondary-class client 0", clients[1])
	}
}

func TestSelectClientsEDCASecondaryFillsGroup(t *testing.T) {
	c := newTestController()
	rssi := fakeRSSI{
		{0, 100}: 9, {0, 101}: 8, {0, 102}: 1, {0, 103}: 1,
		{1, 100}: 1, {1, 101}: 1, {1, 102}: 9, {1, 103}: 8,
	}
	// Only one voice client; a best-effort client tagged elsewhere tops
	// up the group from the secondary class (§3.3).
	c.Enqueue(Packet{Client: 0, TID: 6, Size: 100}, rssi)
	c.Enqueue(Packet{Client: 1, TID: 0, Size: 100}, rssi)
	clients := c.SelectClientsEDCA([]int{100, 102}, mac.ACVoice)
	if len(clients) != 2 {
		t.Fatalf("clients = %v, want both classes served", clients)
	}
}

func TestSelectClientsEDCAMatchesPlainWhenOneClass(t *testing.T) {
	// With a single traffic class the EDCA variant must agree with the
	// §3.2.5 selection.
	mk := func() (*Controller, fakeRSSI) {
		c := newTestController()
		rssi := fakeRSSI{
			{0, 100}: 9, {0, 101}: 8, {0, 102}: 1, {0, 103}: 1,
			{1, 100}: 1, {1, 101}: 9, {1, 102}: 8, {1, 103}: 1,
			{2, 100}: 1, {2, 101}: 1, {2, 102}: 9, {2, 103}: 8,
			{3, 100}: 8, {3, 101}: 1, {3, 102}: 1, {3, 103}: 9,
		}
		for cl := 0; cl < 4; cl++ {
			c.Enqueue(Packet{Client: cl, TID: 0, Size: 100}, rssi)
		}
		return c, rssi
	}
	a, _ := mk()
	b, _ := mk()
	antennas := []int{100, 101, 102, 103}
	plain := a.SelectClients(antennas)
	edca := b.SelectClientsEDCA(antennas, mac.ACBestEffort)
	if !reflect.DeepEqual(plain, edca) {
		t.Errorf("plain %v vs edca %v", plain, edca)
	}
}
