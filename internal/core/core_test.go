package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/mac"
)

func TestQueuePushPop(t *testing.T) {
	q := NewQueue()
	q.Push(Packet{Client: 1, Size: 100})
	q.Push(Packet{Client: 1, Size: 200})
	q.Push(Packet{Client: 2, Size: 300})
	if q.Len() != 3 || q.LenFor(1) != 2 {
		t.Fatalf("Len=%d LenFor(1)=%d", q.Len(), q.LenFor(1))
	}
	p, ok := q.Pop(1)
	if !ok || p.Size != 100 {
		t.Errorf("FIFO violated: %+v", p)
	}
	if q.Len() != 2 {
		t.Errorf("Len after pop = %d", q.Len())
	}
	if _, ok := q.Pop(9); ok {
		t.Error("pop from empty client should fail")
	}
}

func TestQueueSeqAssignment(t *testing.T) {
	q := NewQueue()
	q.Push(Packet{Client: 1})
	q.Push(Packet{Client: 1})
	a, _ := q.Pop(1)
	b, _ := q.Pop(1)
	if a.Seq == b.Seq {
		t.Error("sequence numbers should differ")
	}
}

func TestQueueBackloggedDeterministic(t *testing.T) {
	q := NewQueue()
	q.Push(Packet{Client: 3})
	q.Push(Packet{Client: 0})
	q.Push(Packet{Client: 7})
	if got := q.Backlogged(); !reflect.DeepEqual(got, []int{0, 3, 7}) {
		t.Errorf("Backlogged = %v", got)
	}
	q.Pop(0)
	if got := q.Backlogged(); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Errorf("Backlogged = %v", got)
	}
}

func TestQueueEligibleFor(t *testing.T) {
	q := NewQueue()
	q.Push(Packet{Client: 0, Tags: []int{10, 11}})
	q.Push(Packet{Client: 1, Tags: []int{11, 12}})
	q.Push(Packet{Client: 2, Tags: nil}) // untagged: eligible everywhere
	if got := q.EligibleFor(10); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("EligibleFor(10) = %v", got)
	}
	if got := q.EligibleFor(11); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("EligibleFor(11) = %v", got)
	}
	if got := q.EligibleFor(99); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("EligibleFor(99) = %v", got)
	}
}

func TestDRRSelectLargestDeficit(t *testing.T) {
	d := NewDRR()
	d.Charge([]int{0}, []int{0, 1, 2}, 10*time.Millisecond)
	// Client 0 served (-10ms); 1 and 2 got +5ms each.
	if c, ok := d.Select([]int{0, 1, 2}); !ok || c != 1 {
		t.Errorf("Select = %d (tie should break low)", c)
	}
	if _, ok := d.Select(nil); ok {
		t.Error("empty eligible should fail")
	}
}

func TestDRRChargeConservation(t *testing.T) {
	d := NewDRR()
	txop := 4 * time.Millisecond
	d.Charge([]int{0, 1}, []int{0, 1, 2, 3}, txop)
	// Served pay 2 × 4ms; unserved gain 2·4/2 = 4ms each → sum zero.
	sum := 0.0
	for c := 0; c < 4; c++ {
		sum += d.Deficit(c)
	}
	if sum > 1e-12 || sum < -1e-12 {
		t.Errorf("deficit sum = %v, want 0", sum)
	}
	if d.Deficit(2) != d.Deficit(3) {
		t.Error("unserved clients should gain equally")
	}
}

func TestDRRAllServedNoCredit(t *testing.T) {
	d := NewDRR()
	d.Charge([]int{0, 1}, []int{0, 1}, time.Millisecond)
	if d.Deficit(0) >= 0 {
		t.Error("served clients should have negative deficit")
	}
}

func TestDRRLongRunFairness(t *testing.T) {
	// Simulate many TXOPs serving 2 of 4 clients by largest deficit: all
	// clients should receive service within a bounded spread.
	d := NewDRR()
	all := []int{0, 1, 2, 3}
	servedCount := map[int]int{}
	for round := 0; round < 1000; round++ {
		var served []int
		chosen := map[int]bool{}
		for i := 0; i < 2; i++ {
			var elig []int
			for _, c := range all {
				if !chosen[c] {
					elig = append(elig, c)
				}
			}
			c, _ := d.Select(elig)
			chosen[c] = true
			served = append(served, c)
		}
		for _, c := range served {
			servedCount[c]++
		}
		d.Charge(served, all, time.Millisecond)
	}
	min, max := 1<<30, 0
	for _, c := range all {
		if servedCount[c] < min {
			min = servedCount[c]
		}
		if servedCount[c] > max {
			max = servedCount[c]
		}
	}
	if max-min > 10 {
		t.Errorf("long-run unfairness: counts %v", servedCount)
	}
}

func TestRoundRobinScheduler(t *testing.T) {
	s := NewRoundRobinScheduler()
	elig := []int{0, 1, 2}
	got := []int{s.Pick(elig), s.Pick(elig), s.Pick(elig), s.Pick(elig)}
	if !reflect.DeepEqual(got, []int{0, 1, 2, 0}) {
		t.Errorf("RR order = %v", got)
	}
}

func TestRandomScheduler(t *testing.T) {
	s := &RandomScheduler{Intn: func(n int) int { return n - 1 }}
	if got := s.Pick([]int{4, 5, 6}); got != 6 {
		t.Errorf("Pick = %d", got)
	}
}

// fakeRSSI implements RSSIProvider with a fixed power table.
type fakeRSSI map[[2]int]float64

func (f fakeRSSI) MeanRxPower(client, antenna int) float64 {
	return f[[2]int{client, antenna}]
}

func TestTagAntennas(t *testing.T) {
	rssi := fakeRSSI{
		{0, 10}: 1.0, {0, 11}: 5.0, {0, 12}: 3.0, {0, 13}: 0.5,
	}
	got := TagAntennas(rssi, 0, []int{10, 11, 12, 13}, 2)
	if !reflect.DeepEqual(got, []int{11, 12}) {
		t.Errorf("tags = %v, want [11 12]", got)
	}
	if got := TagAntennas(rssi, 0, []int{10, 11}, 5); len(got) != 2 {
		t.Errorf("tag width should clamp: %v", got)
	}
	if got := TagAntennas(rssi, 0, nil, 2); got != nil {
		t.Errorf("no antennas: %v", got)
	}
	if got := TagAntennas(rssi, 0, []int{10}, 0); got != nil {
		t.Errorf("zero width: %v", got)
	}
}

func TestTagAntennasTieBreak(t *testing.T) {
	rssi := fakeRSSI{{0, 3}: 1.0, {0, 1}: 1.0, {0, 2}: 1.0}
	got := TagAntennas(rssi, 0, []int{3, 1, 2}, 2)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("tie-break = %v, want [1 2]", got)
	}
}

func newTestController() *Controller {
	cfg := DefaultConfig([]int{100, 101, 102, 103})
	return NewController(cfg)
}

func TestControllerLocalIndex(t *testing.T) {
	c := newTestController()
	if i, ok := c.LocalIndex(102); !ok || i != 2 {
		t.Errorf("LocalIndex(102) = %d,%v", i, ok)
	}
	if _, ok := c.LocalIndex(999); ok {
		t.Error("foreign antenna should not resolve")
	}
}

func TestControllerNAVPerAntenna(t *testing.T) {
	c := newTestController()
	c.UpdateNAV(100, 500*time.Microsecond)
	c.UpdateNAV(999, time.Second) // foreign antenna ignored
	if !c.Navs.Busy(0, 0) {
		t.Error("antenna 0 NAV should be set")
	}
	for k := 1; k < 4; k++ {
		if c.Navs.Busy(k, 0) {
			t.Errorf("antenna %d NAV should be clear", k)
		}
	}
}

func TestSelectAntennasAllIdle(t *testing.T) {
	c := newTestController()
	ants, wait := c.SelectAntennas(101, 0, nil)
	if !reflect.DeepEqual(ants, []int{100, 101, 102, 103}) {
		t.Errorf("antennas = %v", ants)
	}
	if wait != 0 {
		t.Errorf("wait = %v, want 0", wait)
	}
}

func TestSelectAntennasOpportunisticWait(t *testing.T) {
	c := newTestController()
	now := 100 * time.Microsecond
	// Antenna 1 busy, expiring within DIFS; antenna 2 busy far beyond.
	c.UpdateNAV(101, now+20*time.Microsecond)
	c.UpdateNAV(102, now+10*time.Millisecond)
	ants, wait := c.SelectAntennas(100, now, nil)
	// 100 (winner, idle), 103 (idle), 101 (expiring soon). 102 excluded.
	if !reflect.DeepEqual(ants, []int{100, 103, 101}) {
		t.Errorf("antennas = %v, want [100 103 101]", ants)
	}
	if wait != now+20*time.Microsecond {
		t.Errorf("wait = %v, want %v", wait, now+20*time.Microsecond)
	}
}

func TestSelectAntennasOrderIsNAVExpiry(t *testing.T) {
	c := newTestController()
	now := time.Millisecond
	c.UpdateNAV(100, now+30*time.Microsecond)
	c.UpdateNAV(103, now+10*time.Microsecond)
	ants, _ := c.SelectAntennas(101, now, nil)
	// Idle first (101, 102 with expiry 0 — ties by index), then 103, 100.
	if !reflect.DeepEqual(ants, []int{101, 102, 103, 100}) {
		t.Errorf("antennas = %v", ants)
	}
}

func TestSelectAntennasForeignWinner(t *testing.T) {
	c := newTestController()
	ants, _ := c.SelectAntennas(999, 0, nil)
	if ants != nil {
		t.Errorf("foreign winner should yield nil, got %v", ants)
	}
}

func TestSelectAntennasMaxStreams(t *testing.T) {
	cfg := DefaultConfig([]int{100, 101, 102, 103})
	cfg.MaxStreams = 2
	c := NewController(cfg)
	ants, _ := c.SelectAntennas(100, 0, nil)
	if len(ants) != 2 {
		t.Errorf("antennas = %v, want 2", ants)
	}
}

func TestEnqueueTagsPackets(t *testing.T) {
	c := newTestController()
	rssi := fakeRSSI{
		{5, 100}: 0.1, {5, 101}: 9.0, {5, 102}: 4.0, {5, 103}: 2.0,
	}
	c.Enqueue(Packet{Client: 5, Size: 100}, rssi)
	p, ok := c.Queue.Head(5)
	if !ok {
		t.Fatal("packet not queued")
	}
	if !reflect.DeepEqual(p.Tags, []int{101, 102}) {
		t.Errorf("tags = %v, want [101 102]", p.Tags)
	}
}

func TestSelectClientsRespectsTagsAndDistinctness(t *testing.T) {
	c := newTestController()
	rssi := fakeRSSI{
		// client 0 prefers antennas 100,101; client 1 prefers 101,102;
		// client 2 prefers 102,103; client 3 prefers 103,100.
		{0, 100}: 9, {0, 101}: 8, {0, 102}: 1, {0, 103}: 1,
		{1, 100}: 1, {1, 101}: 9, {1, 102}: 8, {1, 103}: 1,
		{2, 100}: 1, {2, 101}: 1, {2, 102}: 9, {2, 103}: 8,
		{3, 100}: 8, {3, 101}: 1, {3, 102}: 1, {3, 103}: 9,
	}
	for cl := 0; cl < 4; cl++ {
		c.Enqueue(Packet{Client: cl, Size: 1500}, rssi)
	}
	clients := c.SelectClients([]int{100, 101, 102, 103})
	if len(clients) != 4 {
		t.Fatalf("clients = %v, want 4 distinct", clients)
	}
	seen := map[int]bool{}
	for _, cl := range clients {
		if seen[cl] {
			t.Fatalf("client %d selected twice", cl)
		}
		seen[cl] = true
	}
}

func TestSelectClientsTagFilteringExcludes(t *testing.T) {
	c := newTestController()
	rssi := fakeRSSI{
		{0, 100}: 9, {0, 101}: 8, {0, 102}: 1, {0, 103}: 1,
	}
	c.Enqueue(Packet{Client: 0, Size: 100}, rssi)
	// Only antennas 102,103 available: client 0's tags (100,101) miss.
	clients := c.SelectClients([]int{102, 103})
	if len(clients) != 0 {
		t.Errorf("clients = %v, want none (tag filter)", clients)
	}
	// With a tagged antenna available it is selected.
	clients = c.SelectClients([]int{101, 102})
	if !reflect.DeepEqual(clients, []int{0}) {
		t.Errorf("clients = %v, want [0]", clients)
	}
}

func TestDequeueAndFinishTXOP(t *testing.T) {
	c := newTestController()
	rssi := fakeRSSI{{0, 100}: 2, {0, 101}: 1, {1, 100}: 2, {1, 101}: 1}
	c.Enqueue(Packet{Client: 0, Size: 100}, rssi)
	c.Enqueue(Packet{Client: 1, Size: 200}, rssi)
	pkts := c.Dequeue([]int{0})
	if len(pkts) != 1 || pkts[0].Client != 0 {
		t.Fatalf("Dequeue = %+v", pkts)
	}
	c.FinishTXOP([]int{0}, 2*time.Millisecond)
	d := c.Cfg.Scheduler.(*DRRScheduler).D
	if d.Deficit(0) >= 0 {
		t.Error("served client deficit should be negative")
	}
	if d.Deficit(1) <= 0 {
		t.Error("unserved backlogged client should gain deficit")
	}
}

func TestCASControllerSingleNAV(t *testing.T) {
	c := NewCASController([]int{0, 1, 2, 3}, nil, 0)
	c.UpdateNAV(2, 100*time.Microsecond)
	if !c.NAVBusy(50 * time.Microsecond) {
		t.Error("CAS NAV should be busy")
	}
	if c.NAVBusy(200 * time.Microsecond) {
		t.Error("CAS NAV should expire")
	}
	if c.NAVExpiry() != 100*time.Microsecond {
		t.Errorf("expiry = %v", c.NAVExpiry())
	}
}

func TestCASSelectAllAntennas(t *testing.T) {
	c := NewCASController([]int{7, 8, 9}, nil, 0)
	if got := c.SelectAntennas(); !reflect.DeepEqual(got, []int{7, 8, 9}) {
		t.Errorf("antennas = %v", got)
	}
}

func TestCASSelectClients(t *testing.T) {
	c := NewCASController([]int{0, 1, 2, 3}, nil, 0)
	for cl := 0; cl < 6; cl++ {
		c.Enqueue(Packet{Client: cl, Size: 100})
	}
	clients := c.SelectClients()
	if len(clients) != 4 {
		t.Fatalf("clients = %v, want 4 (maxStreams)", clients)
	}
	seen := map[int]bool{}
	for _, cl := range clients {
		if seen[cl] {
			t.Fatal("duplicate client")
		}
		seen[cl] = true
	}
	// Untagged packets are eligible on all antennas.
	pkts := c.Dequeue(clients)
	if len(pkts) != 4 {
		t.Errorf("Dequeue = %d packets", len(pkts))
	}
	c.FinishTXOP(clients, time.Millisecond)
}

func TestCASMaxStreamsCap(t *testing.T) {
	c := NewCASController([]int{0, 1}, nil, 5)
	for cl := 0; cl < 4; cl++ {
		c.Enqueue(Packet{Client: cl})
	}
	if got := c.SelectClients(); len(got) != 2 {
		t.Errorf("clients = %v, want 2 (antenna count)", got)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig([]int{1, 2})
	if cfg.TagWidth != 2 || cfg.WaitWindow != mac.DIFS || cfg.MaxStreams != 2 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	if cfg.Scheduler == nil {
		t.Error("nil scheduler")
	}
}
