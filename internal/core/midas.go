package core

import (
	"sort"
	"time"

	"repro/internal/mac"
)

// RSSIProvider supplies the long-term (fading-averaged) receive power a
// client sees from an antenna — the quantity MIDAS ranks antennas by for
// virtual packet tagging (§3.2.4). internal/channel's Model implements it
// via MeanRxPower.
type RSSIProvider interface {
	MeanRxPower(client, antenna int) float64
}

// TagAntennas returns the client's tagWidth best antennas (from the
// candidate set, by mean RSSI, strongest first). With tagWidth 2 this is
// the paper's default; 1 risks under-utilisation, all-antennas degrades
// to CAS behaviour (§3.2.4).
func TagAntennas(rssi RSSIProvider, client int, antennas []int, tagWidth int) []int {
	if tagWidth <= 0 || len(antennas) == 0 {
		return nil
	}
	ranked := append([]int(nil), antennas...)
	sort.SliceStable(ranked, func(a, b int) bool {
		pa := rssi.MeanRxPower(client, ranked[a])
		pb := rssi.MeanRxPower(client, ranked[b])
		if pa != pb {
			return pa > pb
		}
		return ranked[a] < ranked[b]
	})
	if tagWidth > len(ranked) {
		tagWidth = len(ranked)
	}
	return ranked[:tagWidth]
}

// Config parameterises a MIDAS controller.
type Config struct {
	// Antennas are the AP's antenna indices (global, into the deployment).
	Antennas []int
	// TagWidth is the number of antennas tagged per packet (paper: 2).
	TagWidth int
	// WaitWindow is the opportunistic-selection wait for NAVs about to
	// expire (paper: one DIFS, §3.2.3).
	WaitWindow time.Duration
	// Scheduler is the client-selection policy (paper: DRR).
	Scheduler Scheduler
	// MaxStreams caps the MU-MIMO group size (≤ number of antennas).
	MaxStreams int
}

// DefaultConfig returns the paper's MIDAS parameters for the antenna set.
func DefaultConfig(antennas []int) Config {
	return Config{
		Antennas:   antennas,
		TagWidth:   2,
		WaitWindow: mac.DIFS,
		Scheduler:  NewDRRScheduler(),
		MaxStreams: len(antennas),
	}
}

// Controller is the MIDAS AP's decision layer: it owns the per-antenna
// NAV table, the tagged packet queue and the fairness state, and answers
// the two questions the station driver asks at each transmit opportunity:
// which antennas to use (§3.2.2–3.2.3) and which clients to serve
// (§3.2.4–3.2.5). It is deliberately free of event-loop plumbing so every
// policy is unit-testable; internal/sim drives it against the medium.
type Controller struct {
	Cfg   Config
	Navs  *mac.Table
	Queue *Queue

	// local maps a global antenna index to its position in Cfg.Antennas.
	local map[int]int
}

// NewController builds a controller with one NAV per antenna.
func NewController(cfg Config) *Controller {
	if cfg.MaxStreams <= 0 || cfg.MaxStreams > len(cfg.Antennas) {
		cfg.MaxStreams = len(cfg.Antennas)
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewDRRScheduler()
	}
	c := &Controller{
		Cfg:   cfg,
		Navs:  mac.NewTable(len(cfg.Antennas)),
		Queue: NewQueue(),
		local: make(map[int]int, len(cfg.Antennas)),
	}
	for i, a := range cfg.Antennas {
		c.local[a] = i
	}
	return c
}

// LocalIndex translates a global antenna index to the controller's NAV
// slot; ok is false for antennas that are not this AP's.
func (c *Controller) LocalIndex(antenna int) (int, bool) {
	i, ok := c.local[antenna]
	return i, ok
}

// Enqueue tags the packet with the client's best antennas and queues it.
func (c *Controller) Enqueue(p Packet, rssi RSSIProvider) {
	p.Tags = TagAntennas(rssi, p.Client, c.Cfg.Antennas, c.Cfg.TagWidth)
	c.Queue.Push(p)
}

// UpdateNAV records an overheard reservation on one antenna (the antenna
// that physically decoded the frame). until is absolute simulation time.
func (c *Controller) UpdateNAV(antenna int, until time.Duration) {
	if i, ok := c.local[antenna]; ok {
		c.Navs.Update(i, until)
	}
}

// Selection is the outcome of one transmit opportunity.
type Selection struct {
	// Antennas are the global antenna indices to transmit from, ordered
	// by NAV expiry (primary antenna first).
	Antennas []int
	// WaitUntil is the absolute time transmission may begin (now when no
	// opportunistic waiting is needed).
	WaitUntil time.Duration
	// Clients are the selected clients, parallel to the antenna order in
	// which they were chosen (not an antenna-to-client mapping: all
	// selected antennas jointly precode to all selected clients, §3.2.5).
	Clients []int
}

// SelectAntennas performs opportunistic antenna selection (§3.2.3): given
// that `winner` (global index) just won channel access at time now, return
// the antennas to engage — all currently idle ones, plus any whose NAV
// expires within the wait window — and the time to wait until. physBusy,
// when non-nil, reports an antenna's physical carrier-sense state by local
// index; physically busy antennas are never engaged (their occupant's end
// time is unknown, so they do not qualify for the wait window either).
func (c *Controller) SelectAntennas(winner int, now time.Duration, physBusy func(local int) bool) (antennas []int, waitUntil time.Duration) {
	waitUntil = now
	wl, ok := c.local[winner]
	if !ok {
		return nil, now
	}
	busy := func(k int) bool { return physBusy != nil && physBusy(k) && k != wl }
	idle := c.Navs.Idle(now)
	soon := c.Navs.ExpiringWithin(now, c.Cfg.WaitWindow)
	set := make([]int, 0, len(idle)+len(soon))
	seen := map[int]bool{wl: true}
	set = append(set, wl)
	for _, k := range append(idle, soon...) {
		if !seen[k] && !busy(k) {
			seen[k] = true
			set = append(set, k)
		}
	}
	for _, k := range soon {
		if busy(k) {
			continue
		}
		if exp := c.Navs.Expiry(k); exp > waitUntil {
			waitUntil = exp
		}
	}
	ordered := c.Navs.ByExpiry(set)
	antennas = make([]int, 0, len(ordered))
	for _, k := range ordered {
		antennas = append(antennas, c.Cfg.Antennas[k])
	}
	if len(antennas) > c.Cfg.MaxStreams {
		antennas = antennas[:c.Cfg.MaxStreams]
	}
	return antennas, waitUntil
}

// SelectClients performs antenna-specific, fairness-driven client
// selection (§3.2.5): antennas are visited in the given (NAV-expiry)
// order; for each, the scheduler picks among the backlogged clients whose
// head-of-line packet tags that antenna, excluding already-chosen clients.
// The returned client list has at most one client per antenna; antennas
// that found no eligible client contribute nothing (but still transmit as
// part of the precoded group).
func (c *Controller) SelectClients(antennas []int) []int {
	chosen := map[int]bool{}
	var clients []int
	for _, a := range antennas {
		eligible := c.Queue.EligibleFor(a)
		filtered := eligible[:0:0]
		for _, cl := range eligible {
			if !chosen[cl] {
				filtered = append(filtered, cl)
			}
		}
		if len(filtered) == 0 {
			continue
		}
		pick := c.Cfg.Scheduler.Pick(filtered)
		chosen[pick] = true
		clients = append(clients, pick)
	}
	return clients
}

// Dequeue removes the head packets for the served clients, returning them
// in client order given.
func (c *Controller) Dequeue(clients []int) []Packet {
	pkts := make([]Packet, 0, len(clients))
	for _, cl := range clients {
		if p, ok := c.Queue.Pop(cl); ok {
			pkts = append(pkts, p)
		}
	}
	return pkts
}

// FinishTXOP applies the fairness updates after serving `served` for txop.
func (c *Controller) FinishTXOP(served []int, txop time.Duration) {
	c.Cfg.Scheduler.Charge(served, c.Queue.Backlogged(), txop)
}
