package core

import (
	"time"

	"repro/internal/mac"
)

// CASController is the conventional 802.11ac baseline (§5.1): a single
// channel state for the whole AP — one NAV coupling every antenna — no
// packet tagging, and client selection over all backlogged clients. The
// station driver uses it exactly like a MIDAS Controller, which keeps the
// end-to-end comparison apples-to-apples: only the §3.2 policies differ.
type CASController struct {
	Antennas  []int
	Queue     *Queue
	Scheduler Scheduler
	nav       mac.NAV
	maxStream int
}

// NewCASController builds the baseline controller.
func NewCASController(antennas []int, sched Scheduler, maxStreams int) *CASController {
	if sched == nil {
		sched = NewDRRScheduler()
	}
	if maxStreams <= 0 || maxStreams > len(antennas) {
		maxStreams = len(antennas)
	}
	return &CASController{
		Antennas:  antennas,
		Queue:     NewQueue(),
		Scheduler: sched,
		maxStream: maxStreams,
	}
}

// Enqueue queues a packet without tags (every antenna is equivalent in a
// CAS, so tagging is meaningless).
func (c *CASController) Enqueue(p Packet) {
	p.Tags = nil
	c.Queue.Push(p)
}

// UpdateNAV records an overheard reservation. The antenna argument is
// ignored: a CAS AP keeps a single medium state (§3.2.2's
// channel-state-coupling limitation).
func (c *CASController) UpdateNAV(_ int, until time.Duration) { c.nav.Update(until) }

// NAVBusy reports the single virtual carrier-sense state.
func (c *CASController) NAVBusy(now time.Duration) bool { return c.nav.Busy(now) }

// NAVExpiry returns the single NAV's expiry.
func (c *CASController) NAVExpiry() time.Duration { return c.nav.Expiry() }

// SelectAntennas engages all antennas unconditionally — the CAS MAC
// treats the array as one unit.
func (c *CASController) SelectAntennas() []int {
	return append([]int(nil), c.Antennas...)
}

// SelectClients picks up to maxStreams distinct backlogged clients using
// the scheduler, with no antenna affinity.
func (c *CASController) SelectClients() []int {
	chosen := map[int]bool{}
	var clients []int
	for len(clients) < c.maxStream {
		var eligible []int
		for _, cl := range c.Queue.Backlogged() {
			if !chosen[cl] {
				eligible = append(eligible, cl)
			}
		}
		if len(eligible) == 0 {
			break
		}
		pick := c.Scheduler.Pick(eligible)
		chosen[pick] = true
		clients = append(clients, pick)
	}
	return clients
}

// Dequeue removes the head packets for the served clients.
func (c *CASController) Dequeue(clients []int) []Packet {
	pkts := make([]Packet, 0, len(clients))
	for _, cl := range clients {
		if p, ok := c.Queue.Pop(cl); ok {
			pkts = append(pkts, p)
		}
	}
	return pkts
}

// FinishTXOP applies fairness accounting.
func (c *CASController) FinishTXOP(served []int, txop time.Duration) {
	c.Scheduler.Charge(served, c.Queue.Backlogged(), txop)
}
