package core

import (
	"repro/internal/mac"
)

// 802.11e/ac traffic-class integration (§3.3): 802.11ac re-purposes the
// four EDCA queues for MU-MIMO — when a class wins channel access it
// becomes the *primary* access class, and if it cannot fill the MU group,
// clients from *secondary* classes top it up. MIDAS's client selection
// runs within each class in priority order.

// acOrder lists access categories from highest to lowest priority.
var acOrder = []mac.AccessCategory{
	mac.ACVoice, mac.ACVideo, mac.ACBestEffort, mac.ACBackground,
}

// BackloggedByAC partitions the queue's backlogged clients by the access
// category of their head-of-line packet.
func (q *Queue) BackloggedByAC() map[mac.AccessCategory][]int {
	out := map[mac.AccessCategory][]int{}
	for _, c := range q.Backlogged() {
		p, _ := q.Head(c)
		ac := mac.ACOfTID(p.TID)
		out[ac] = append(out[ac], c)
	}
	return out
}

// PrimaryAC returns the highest-priority access category with backlog —
// the class that would win the AP's internal EDCA contention, hence the
// primary access class of the next TXOP. ok is false when the queue is
// empty.
func (q *Queue) PrimaryAC() (mac.AccessCategory, bool) {
	byAC := q.BackloggedByAC()
	for _, ac := range acOrder {
		if len(byAC[ac]) > 0 {
			return ac, true
		}
	}
	return mac.ACBestEffort, false
}

// eligibleForWithAC returns the backlogged clients whose head packet tags
// the antenna AND belongs to the access category.
func (q *Queue) eligibleForWithAC(antenna int, ac mac.AccessCategory) []int {
	var out []int
	for _, c := range q.EligibleFor(antenna) {
		p, _ := q.Head(c)
		if mac.ACOfTID(p.TID) == ac {
			out = append(out, c)
		}
	}
	return out
}

// SelectClientsEDCA is SelectClients with §3.3's class structure: for
// each available antenna the scheduler first considers the primary
// class's tagged clients, then falls back through secondary classes in
// priority order. Antenna order and distinctness rules are unchanged.
func (c *Controller) SelectClientsEDCA(antennas []int, primary mac.AccessCategory) []int {
	chosen := map[int]bool{}
	var clients []int
	classes := make([]mac.AccessCategory, 0, len(acOrder))
	classes = append(classes, primary)
	for _, ac := range acOrder {
		if ac != primary {
			classes = append(classes, ac)
		}
	}
	for _, a := range antennas {
		picked := false
		for _, ac := range classes {
			eligible := c.Queue.eligibleForWithAC(a, ac)
			filtered := eligible[:0:0]
			for _, cl := range eligible {
				if !chosen[cl] {
					filtered = append(filtered, cl)
				}
			}
			if len(filtered) == 0 {
				continue
			}
			pick := c.Cfg.Scheduler.Pick(filtered)
			chosen[pick] = true
			clients = append(clients, pick)
			picked = true
			break
		}
		_ = picked
	}
	return clients
}

// SelectClientsEDCA is the CAS baseline's class-aware selection: fill the
// group from the primary class's backlog, then secondary classes, with no
// antenna affinity (the 802.11ac behaviour §3.3 describes).
func (c *CASController) SelectClientsEDCA(primary mac.AccessCategory) []int {
	classes := make([]mac.AccessCategory, 0, len(acOrder))
	classes = append(classes, primary)
	for _, ac := range acOrder {
		if ac != primary {
			classes = append(classes, ac)
		}
	}
	chosen := map[int]bool{}
	var clients []int
	byAC := c.Queue.BackloggedByAC()
	for _, ac := range classes {
		for len(clients) < c.maxStream {
			var eligible []int
			for _, cl := range byAC[ac] {
				if !chosen[cl] {
					eligible = append(eligible, cl)
				}
			}
			if len(eligible) == 0 {
				break
			}
			pick := c.Scheduler.Pick(eligible)
			chosen[pick] = true
			clients = append(clients, pick)
		}
	}
	return clients
}
