package phy

import (
	"math"
	"math/cmplx"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/rng"
)

func TestSelectMCS(t *testing.T) {
	cases := []struct {
		sinr float64
		want int
		ok   bool
	}{
		{-5, 0, false},
		{2, 0, true},
		{5, 1, true},
		{10, 2, true},
		{19, 5, true},
		{40, 9, true},
	}
	for _, tc := range cases {
		m, ok := Select(tc.sinr)
		if ok != tc.ok {
			t.Errorf("Select(%v) ok = %v", tc.sinr, ok)
			continue
		}
		if ok && m.Index != tc.want {
			t.Errorf("Select(%v) = MCS%d, want MCS%d", tc.sinr, m.Index, tc.want)
		}
	}
}

func TestMCSTableMonotone(t *testing.T) {
	for i := 1; i < len(Table); i++ {
		if Table[i].MinSINRdB <= Table[i-1].MinSINRdB {
			t.Errorf("MCS thresholds not increasing at %d", i)
		}
		if Table[i].BitsPerSymbol <= Table[i-1].BitsPerSymbol {
			t.Errorf("MCS rates not increasing at %d", i)
		}
		if Table[i].Index != i {
			t.Errorf("MCS index mismatch at %d", i)
		}
	}
}

func TestShannonRate(t *testing.T) {
	if got := ShannonRate(3); math.Abs(got-2) > 1e-12 {
		t.Errorf("ShannonRate(3) = %v, want 2", got)
	}
	if got := ShannonRate(0); got != 0 {
		t.Errorf("ShannonRate(0) = %v", got)
	}
}

func TestAirtime(t *testing.T) {
	m := Table[7] // 64-QAM 5/6
	d, err := Airtime(1500, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d <= VHTPreamble {
		t.Errorf("airtime %v should exceed preamble", d)
	}
	// More streams → shorter airtime.
	d4, err := Airtime(1500, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d4 >= d {
		t.Errorf("4-stream airtime %v should beat 1-stream %v", d4, d)
	}
	// Longer payload → longer airtime.
	dBig, _ := Airtime(15000, m, 1)
	if dBig <= d {
		t.Errorf("larger payload should take longer: %v vs %v", dBig, d)
	}
}

func TestAirtimeErrors(t *testing.T) {
	if _, err := Airtime(100, Table[0], 0); err == nil {
		t.Error("nss=0 should error")
	}
	if _, err := Airtime(100, MCS{}, 1); err == nil {
		t.Error("zero-rate MCS should error")
	}
}

func TestAirtimeSymbolQuantised(t *testing.T) {
	m := Table[0]
	d, _ := Airtime(10, m, 1)
	if (d-VHTPreamble)%SymbolDuration != 0 {
		t.Errorf("airtime %v not symbol-aligned", d)
	}
	if d < VHTPreamble+SymbolDuration {
		t.Errorf("airtime %v too short", d)
	}
}

func TestEffectiveRateMbps(t *testing.T) {
	// MCS9 x4 streams on 80 MHz should be in the gigabit class.
	got := EffectiveRateMbps(Table[9], 4)
	if got < 1000 || got > 2000 {
		t.Errorf("MCS9x4 = %v Mb/s, want ~1560", got)
	}
	one := EffectiveRateMbps(Table[0], 1)
	if math.Abs(one-29.25) > 0.01 { // 0.5*234/4 = 29.25 Mb/s
		t.Errorf("MCS0x1 = %v Mb/s, want 29.25", one)
	}
}

func mkH(s *rng.Source, r, c int) *matrix.Mat {
	h := matrix.New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			h.Set(i, j, s.ComplexCircular(1))
		}
	}
	return h
}

func TestFeedbackCloseToTruth(t *testing.T) {
	s := rng.New(1)
	h := mkH(s, 4, 4)
	fb := DefaultSounding().Feedback(h, s)
	if fb.Rows() != 4 || fb.Cols() != 4 {
		t.Fatal("bad shape")
	}
	// Relative error should be small but nonzero.
	errNorm := fb.Sub(h).FrobeniusNorm() / h.FrobeniusNorm()
	if errNorm == 0 {
		t.Error("feedback should be lossy")
	}
	if errNorm > 0.25 {
		t.Errorf("feedback error %v too large", errNorm)
	}
}

func TestFeedbackDeterministic(t *testing.T) {
	h := mkH(rng.New(2), 2, 4)
	a := DefaultSounding().Feedback(h, rng.New(5))
	b := DefaultSounding().Feedback(h, rng.New(5))
	if !a.Equalish(b, 0) {
		t.Error("same source should give same feedback")
	}
}

func TestFeedbackPerfectWhenConfigured(t *testing.T) {
	h := mkH(rng.New(3), 3, 3)
	s := Sounding{EstimationSNRdB: math.Inf(1), PhaseBits: 0, MagBits: 0}
	fb := s.Feedback(h, rng.New(1))
	if !fb.Equalish(h, 1e-15) {
		t.Error("infinite SNR + no quantisation should be lossless")
	}
}

func TestQuantizeGridProperties(t *testing.T) {
	s := DefaultSounding()
	// Quantisation is idempotent.
	v := complex(0.3, -0.7)
	q1 := s.quantize(v)
	q2 := s.quantize(q1)
	if cmplx.Abs(q1-q2) > 1e-9 {
		t.Errorf("quantize not idempotent: %v vs %v", q1, q2)
	}
	if s.quantize(0) != 0 {
		t.Error("quantize(0) should be 0")
	}
	// Coarser quantisers are lossier on average.
	coarse := Sounding{EstimationSNRdB: math.Inf(1), PhaseBits: 2, MagBits: 2}
	fine := Sounding{EstimationSNRdB: math.Inf(1), PhaseBits: 10, MagBits: 10}
	src := rng.New(7)
	var coarseErr, fineErr float64
	for i := 0; i < 500; i++ {
		z := src.ComplexCircular(1)
		coarseErr += cmplx.Abs(coarse.quantize(z) - z)
		fineErr += cmplx.Abs(fine.quantize(z) - z)
	}
	if coarseErr <= fineErr {
		t.Errorf("coarse quantiser error %v should exceed fine %v", coarseErr, fineErr)
	}
}

func TestSoundingDegradesWithLowSNR(t *testing.T) {
	h := mkH(rng.New(11), 4, 4)
	relErr := func(estSNR float64) float64 {
		s := Sounding{EstimationSNRdB: estSNR, PhaseBits: 0, MagBits: 0}
		sum := 0.0
		for i := 0; i < 50; i++ {
			fb := s.Feedback(h, rng.New(int64(i)))
			sum += fb.Sub(h).FrobeniusNorm() / h.FrobeniusNorm()
		}
		return sum / 50
	}
	if lo, hi := relErr(30), relErr(10); lo >= hi {
		t.Errorf("estimation error at 30dB (%v) should beat 10dB (%v)", lo, hi)
	}
}

func TestAirtimeRealistic(t *testing.T) {
	// A 1500-byte frame at MCS7 single stream ≈ 40us preamble + ~11 symbols.
	d, _ := Airtime(1500, Table[7], 1)
	if d < 60*time.Microsecond || d > 150*time.Microsecond {
		t.Errorf("airtime %v outside plausible range", d)
	}
}
