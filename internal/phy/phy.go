// Package phy models the 802.11ac physical-layer machinery that sits
// between the channel and the MAC: explicit sounding with quantised CSI
// feedback (§3.3 of the MIDAS paper), SINR-to-MCS mapping, and PPDU
// airtime computation used for NAV durations.
package phy

import (
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"repro/internal/matrix"
	"repro/internal/rng"
)

// Sounding models 802.11ac explicit channel sounding: the AP transmits an
// NDP, clients estimate the channel and feed back a compressed (quantised)
// estimate. Estimation noise and quantisation both perturb the CSI the
// precoder sees; MIDAS's client selection deliberately avoids depending on
// fresh CSI (§3.2.5), while its precoder consumes it per TXOP.
type Sounding struct {
	// EstimationSNRdB is the effective SNR of the channel estimate; the
	// per-entry estimation error is |h|²/SNR. 25 dB is typical of VHT
	// preamble-based estimation at mid-range.
	EstimationSNRdB float64
	// PhaseBits / MagBits are the quantiser widths of the compressed
	// feedback. 802.11ac's Givens-angle codebook uses 9–16 bits per
	// angle pair; we quantise magnitude and phase per entry instead — a
	// documented substitution with the same behavioural effect (lossy,
	// bit-width-controlled feedback).
	PhaseBits int
	MagBits   int
}

// DefaultSounding returns feedback fidelity typical of 802.11ac.
func DefaultSounding() Sounding {
	return Sounding{EstimationSNRdB: 25, PhaseBits: 9, MagBits: 7}
}

// Feedback returns the CSI matrix the AP obtains for true channel h:
// estimation noise followed by magnitude/phase quantisation.
func (s Sounding) Feedback(h *matrix.Mat, src *rng.Source) *matrix.Mat {
	out := matrix.New(h.Rows(), h.Cols())
	estVar := math.Pow(10, -s.EstimationSNRdB/10)
	for i := 0; i < h.Rows(); i++ {
		for j := 0; j < h.Cols(); j++ {
			v := h.At(i, j)
			p := real(v)*real(v) + imag(v)*imag(v)
			if estVar > 0 {
				v += src.ComplexCircular(p * estVar)
			}
			out.Set(i, j, s.quantize(v))
		}
	}
	return out
}

// quantize rounds a complex value to the configured magnitude/phase grid.
// Magnitude is quantised on a per-entry dB grid spanning ±24 dB around
// the value (keeping the quantiser scale-free), phase uniformly over 2π.
func (s Sounding) quantize(v complex128) complex128 {
	if v == 0 {
		return 0
	}
	mag, ph := cmplx.Abs(v), cmplx.Phase(v)
	if s.PhaseBits > 0 {
		steps := float64(uint64(1) << uint(s.PhaseBits))
		ph = math.Round(ph/(2*math.Pi)*steps) / steps * 2 * math.Pi
	}
	if s.MagBits > 0 {
		// Quantise log-magnitude with step 48dB/2^bits.
		stepDB := 48.0 / float64(uint64(1)<<uint(s.MagBits))
		db := 20 * math.Log10(mag)
		db = math.Round(db/stepDB) * stepDB
		mag = math.Pow(10, db/20)
	}
	return cmplx.Rect(mag, ph)
}

// MCS describes one 802.11ac modulation-and-coding scheme.
type MCS struct {
	Index      int
	Modulation string
	CodeRate   string
	// BitsPerSymbol is data bits per subcarrier per symbol (rate × log2 M).
	BitsPerSymbol float64
	// MinSINRdB is the receiver sensitivity threshold for ~10% PER.
	MinSINRdB float64
}

// Table is the 802.11ac single-stream MCS set (0–9).
var Table = []MCS{
	{0, "BPSK", "1/2", 0.5, 2},
	{1, "QPSK", "1/2", 1.0, 5},
	{2, "QPSK", "3/4", 1.5, 9},
	{3, "16-QAM", "1/2", 2.0, 11},
	{4, "16-QAM", "3/4", 3.0, 15},
	{5, "64-QAM", "2/3", 4.0, 18},
	{6, "64-QAM", "3/4", 4.5, 20},
	{7, "64-QAM", "5/6", 5.0, 25},
	{8, "256-QAM", "3/4", 6.0, 29},
	{9, "256-QAM", "5/6", 6.67, 31},
}

// Select returns the highest MCS whose threshold the SINR meets, or
// (MCS{}, false) when even MCS0 is not decodable. Closed-loop MU-MIMO
// selects MCS directly from CSI (§5.1), so no rate-adaptation loop is
// modelled.
func Select(sinrDB float64) (MCS, bool) {
	best := -1
	for i, m := range Table {
		if sinrDB >= m.MinSINRdB {
			best = i
		}
	}
	if best < 0 {
		return MCS{}, false
	}
	return Table[best], true
}

// ShannonRate returns log2(1+sinr) in bit/s/Hz from a linear SINR.
func ShannonRate(sinr float64) float64 { return math.Log2(1 + sinr) }

// PPDU airtime constants for an 80 MHz VHT transmission.
const (
	// SymbolDuration is the OFDM symbol time with a normal guard interval.
	SymbolDuration = 4 * time.Microsecond
	// VHTPreamble is the duration of the VHT PLCP preamble (L-STF through
	// VHT-SIG-B) for a single sounding/data PPDU.
	VHTPreamble = 40 * time.Microsecond
	// DataSubcarriers80MHz is the number of data subcarriers in an
	// 80 MHz VHT channel.
	DataSubcarriers80MHz = 234
)

// Airtime returns the duration of a PPDU carrying bytes payload bytes at
// the given MCS with nss spatial streams over an 80 MHz channel.
func Airtime(bytes int, m MCS, nss int) (time.Duration, error) {
	if nss < 1 {
		return 0, fmt.Errorf("phy: invalid stream count %d", nss)
	}
	bitsPerSymbol := m.BitsPerSymbol * float64(DataSubcarriers80MHz) * float64(nss)
	if bitsPerSymbol <= 0 {
		return 0, fmt.Errorf("phy: MCS %d carries no bits", m.Index)
	}
	symbols := math.Ceil(float64(bytes*8+22) / bitsPerSymbol) // +SERVICE/tail
	return VHTPreamble + time.Duration(symbols)*SymbolDuration, nil
}

// EffectiveRateMbps returns the PHY data rate of an MCS with nss streams
// on 80 MHz in Mb/s.
func EffectiveRateMbps(m MCS, nss int) float64 {
	return m.BitsPerSymbol * float64(DataSubcarriers80MHz) * float64(nss) /
		(float64(SymbolDuration) / float64(time.Microsecond))
}
