// Package trace records and replays CSI traces — sequences of complex
// channel matrices with their topology metadata. The paper's large-scale
// evaluation (§5.5) measures CSI on the testbed and "feeds the traces
// back to the simulation"; this package provides the same workflow with a
// versioned, checksummed binary format, so experiments can be re-run bit-
// identically from a recorded file (see DESIGN.md §2).
//
// File layout (little endian):
//
//	magic "MIDASCSI" | version u16 | flags u16
//	meta: seed i64 | clients u32 | antennas u32 | frames u32
//	positions: clients×(f64,f64) then antennas×(f64,f64)
//	frames: frames × clients × antennas × (f64 re, f64 im)
//	crc32(IEEE) over everything above
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/geom"
	"repro/internal/matrix"
)

// Magic identifies a CSI trace stream.
var Magic = [8]byte{'M', 'I', 'D', 'A', 'S', 'C', 'S', 'I'}

// Version is the current format version.
const Version uint16 = 1

// Errors returned by the decoder.
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrCorrupt    = errors.New("trace: checksum mismatch")
	ErrTruncated  = errors.New("trace: truncated stream")
)

// Trace is a recorded CSI sequence: frame t holds the |C|×|T| channel
// matrix observed at coherence step t.
type Trace struct {
	Seed     int64
	Clients  []geom.Point
	Antennas []geom.Point
	Frames   []*matrix.Mat
}

// NumFrames returns the number of recorded coherence steps.
func (t *Trace) NumFrames() int { return len(t.Frames) }

// Validate checks internal consistency.
func (t *Trace) Validate() error {
	for i, f := range t.Frames {
		if f.Rows() != len(t.Clients) || f.Cols() != len(t.Antennas) {
			return fmt.Errorf("trace: frame %d is %d×%d, want %d×%d",
				i, f.Rows(), f.Cols(), len(t.Clients), len(t.Antennas))
		}
	}
	return nil
}

// crcWriter tees writes into a running CRC.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int
	err error
}

func (c *crcWriter) write(b []byte) {
	if c.err != nil {
		return
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, b)
	n, err := c.w.Write(b)
	c.n += n
	c.err = err
}

func (c *crcWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	c.write(b[:])
}

func (c *crcWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.write(b[:])
}

func (c *crcWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.write(b[:])
}

func (c *crcWriter) f64(v float64) { c.u64(math.Float64bits(v)) }

// Write encodes the trace to w.
func Write(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	c := &crcWriter{w: bw}
	c.write(Magic[:])
	c.u16(Version)
	c.u16(0) // flags
	c.u64(uint64(t.Seed))
	c.u32(uint32(len(t.Clients)))
	c.u32(uint32(len(t.Antennas)))
	c.u32(uint32(len(t.Frames)))
	for _, p := range t.Clients {
		c.f64(p.X)
		c.f64(p.Y)
	}
	for _, p := range t.Antennas {
		c.f64(p.X)
		c.f64(p.Y)
	}
	for _, f := range t.Frames {
		for i := 0; i < f.Rows(); i++ {
			for j := 0; j < f.Cols(); j++ {
				v := f.At(i, j)
				c.f64(real(v))
				c.f64(imag(v))
			}
		}
	}
	if c.err != nil {
		return c.err
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], c.crc)
	if _, err := bw.Write(b[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// crcReader verifies a running CRC while reading.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) read(b []byte) error {
	if _, err := io.ReadFull(c.r, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, b)
	return nil
}

func (c *crcReader) u16() (uint16, error) {
	var b [2]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (c *crcReader) u32() (uint32, error) {
	var b [4]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (c *crcReader) u64() (uint64, error) {
	var b [8]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (c *crcReader) f64() (float64, error) {
	u, err := c.u64()
	return math.Float64frombits(u), err
}

// maxDim bounds declared dimensions so corrupt headers cannot trigger
// huge allocations.
const maxDim = 1 << 20

// Read decodes a trace from r, verifying magic, version and checksum.
func Read(r io.Reader) (*Trace, error) {
	c := &crcReader{r: bufio.NewReader(r)}
	var magic [8]byte
	if err := c.read(magic[:]); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	ver, err := c.u16()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	if _, err := c.u16(); err != nil { // flags
		return nil, err
	}
	seed, err := c.u64()
	if err != nil {
		return nil, err
	}
	nC, err := c.u32()
	if err != nil {
		return nil, err
	}
	nA, err := c.u32()
	if err != nil {
		return nil, err
	}
	nF, err := c.u32()
	if err != nil {
		return nil, err
	}
	if nC == 0 || nA == 0 || nC > maxDim || nA > maxDim || nF > maxDim {
		return nil, fmt.Errorf("trace: implausible dimensions %d×%d×%d", nF, nC, nA)
	}
	t := &Trace{Seed: int64(seed)}
	readPts := func(n uint32) ([]geom.Point, error) {
		pts := make([]geom.Point, n)
		for i := range pts {
			x, err := c.f64()
			if err != nil {
				return nil, err
			}
			y, err := c.f64()
			if err != nil {
				return nil, err
			}
			pts[i] = geom.Pt(x, y)
		}
		return pts, nil
	}
	if t.Clients, err = readPts(nC); err != nil {
		return nil, err
	}
	if t.Antennas, err = readPts(nA); err != nil {
		return nil, err
	}
	t.Frames = make([]*matrix.Mat, nF)
	for f := range t.Frames {
		m := matrix.New(int(nC), int(nA))
		for i := 0; i < int(nC); i++ {
			for j := 0; j < int(nA); j++ {
				re, err := c.f64()
				if err != nil {
					return nil, err
				}
				im, err := c.f64()
				if err != nil {
					return nil, err
				}
				m.Set(i, j, complex(re, im))
			}
		}
		t.Frames[f] = m
	}
	want := c.crc
	var b [4]byte
	if _, err := io.ReadFull(c.r.(io.Reader), b[:]); err != nil {
		return nil, ErrTruncated
	}
	if binary.LittleEndian.Uint32(b[:]) != want {
		return nil, ErrCorrupt
	}
	return t, nil
}

// Recorder captures frames from any source of channel matrices.
type Recorder struct {
	t *Trace
}

// NewRecorder starts a trace with the given topology metadata.
func NewRecorder(seed int64, clients, antennas []geom.Point) *Recorder {
	return &Recorder{t: &Trace{
		Seed:     seed,
		Clients:  append([]geom.Point(nil), clients...),
		Antennas: append([]geom.Point(nil), antennas...),
	}}
}

// Capture appends one coherence step's channel matrix (deep-copied).
func (r *Recorder) Capture(h *matrix.Mat) error {
	if h.Rows() != len(r.t.Clients) || h.Cols() != len(r.t.Antennas) {
		return fmt.Errorf("trace: capture %d×%d into %d×%d trace",
			h.Rows(), h.Cols(), len(r.t.Clients), len(r.t.Antennas))
	}
	r.t.Frames = append(r.t.Frames, h.Clone())
	return nil
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return r.t }

// Replayer iterates a trace's frames, cycling when it runs out — the
// replay side of the paper's trace-driven simulation.
type Replayer struct {
	t   *Trace
	pos int
}

// NewReplayer wraps a trace for replay. It panics on an empty trace.
func NewReplayer(t *Trace) *Replayer {
	if len(t.Frames) == 0 {
		panic("trace: replay of empty trace")
	}
	return &Replayer{t: t}
}

// Next returns the next frame, cycling past the end.
func (r *Replayer) Next() *matrix.Mat {
	m := r.t.Frames[r.pos]
	r.pos = (r.pos + 1) % len(r.t.Frames)
	return m
}

// Reset rewinds the replayer.
func (r *Replayer) Reset() { r.pos = 0 }

// Pos returns the index of the next frame to be returned.
func (r *Replayer) Pos() int { return r.pos }
