package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/topology"
)

func sampleTrace(frames int, seed int64) *Trace {
	dep := topology.SingleAP(topology.DefaultConfig(topology.DAS), rng.New(seed))
	m := dep.Model(channel.Default(), rng.New(seed+1))
	var antennas []geom.Point
	for _, a := range dep.Antennas {
		antennas = append(antennas, a.Pos)
	}
	rec := NewRecorder(seed, dep.Clients, antennas)
	for f := 0; f < frames; f++ {
		if err := rec.Capture(m.Matrix(nil, nil)); err != nil {
			panic(err)
		}
		m.Evolve()
	}
	return rec.Trace()
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace(5, 1)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != tr.Seed {
		t.Errorf("seed = %d", got.Seed)
	}
	if len(got.Clients) != len(tr.Clients) || len(got.Antennas) != len(tr.Antennas) {
		t.Fatal("topology size mismatch")
	}
	for i := range tr.Clients {
		if got.Clients[i] != tr.Clients[i] {
			t.Errorf("client %d: %v vs %v", i, got.Clients[i], tr.Clients[i])
		}
	}
	if got.NumFrames() != 5 {
		t.Fatalf("frames = %d", got.NumFrames())
	}
	for f := range tr.Frames {
		if !got.Frames[f].Equalish(tr.Frames[f], 0) {
			t.Errorf("frame %d differs", f)
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	tr := sampleTrace(2, 2)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x01
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("corruption not detected")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	tr := sampleTrace(1, 3)
	var buf bytes.Buffer
	Write(&buf, tr)
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Errorf("magic err = %v", err)
	}

	bad = append([]byte(nil), data...)
	bad[8] = 99 // version
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("expected version error")
	}
}

func TestTruncation(t *testing.T) {
	tr := sampleTrace(3, 4)
	var buf bytes.Buffer
	Write(&buf, tr)
	data := buf.Bytes()
	for _, cut := range []int{0, 3, 9, 20, len(data) / 2, len(data) - 2} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestImplausibleDims(t *testing.T) {
	// Handcraft a header with absurd frame count: reader must refuse
	// rather than allocate.
	tr := &Trace{Seed: 1, Clients: []geom.Point{{}}, Antennas: []geom.Point{{}}}
	var buf bytes.Buffer
	Write(&buf, tr)
	data := buf.Bytes()
	// frames field is at offset 8+2+2+8+4+4 = 28.
	data[28] = 0xff
	data[29] = 0xff
	data[30] = 0xff
	data[31] = 0x7f
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("implausible dimensions accepted")
	}
}

func TestRecorderValidates(t *testing.T) {
	rec := NewRecorder(1, []geom.Point{{}}, []geom.Point{{}, {}})
	if err := rec.Capture(matrix.New(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := rec.Capture(matrix.New(2, 2)); err == nil {
		t.Error("wrong-shape capture accepted")
	}
}

func TestRecorderDeepCopies(t *testing.T) {
	rec := NewRecorder(1, []geom.Point{{}}, []geom.Point{{}})
	m := matrix.New(1, 1)
	m.Set(0, 0, 1)
	rec.Capture(m)
	m.Set(0, 0, 9)
	if rec.Trace().Frames[0].At(0, 0) != 1 {
		t.Error("capture did not deep-copy")
	}
}

func TestReplayerCycles(t *testing.T) {
	tr := sampleTrace(3, 5)
	r := NewReplayer(tr)
	seen := []*matrix.Mat{r.Next(), r.Next(), r.Next(), r.Next()}
	if !seen[3].Equalish(seen[0], 0) {
		t.Error("replayer should cycle")
	}
	if r.Pos() != 1 {
		t.Errorf("pos = %d", r.Pos())
	}
	r.Reset()
	if r.Pos() != 0 {
		t.Error("reset failed")
	}
}

func TestReplayerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReplayer(&Trace{})
}

func TestValidateCatchesShapeDrift(t *testing.T) {
	tr := sampleTrace(2, 6)
	tr.Frames[1] = matrix.New(1, 1)
	if err := tr.Validate(); err == nil {
		t.Error("shape drift not caught")
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err == nil {
		t.Error("Write should refuse invalid trace")
	}
}

// Property: Read never panics on arbitrary bytes.
func TestReadNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("Read panicked")
			}
		}()
		_, _ = Read(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: write/read is the identity for random small traces.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, frames uint8) bool {
		n := int(frames%4) + 1
		tr := sampleTrace(n, seed)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NumFrames() != n {
			return false
		}
		for i := range tr.Frames {
			if !got.Frames[i].Equalish(tr.Frames[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	tr := sampleTrace(20, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	tr := sampleTrace(20, 1)
	var buf bytes.Buffer
	Write(&buf, tr)
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
