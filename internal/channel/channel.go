// Package channel models the indoor 5 GHz wireless channel that the MIDAS
// testbed measured: log-distance path loss, log-normal shadow fading and
// Rayleigh small-scale fading, with spatial correlation across co-located
// (CAS) antennas and independent fading across distributed (DAS) antennas.
//
// The paper's WARP testbed is replaced by this statistical model (see
// DESIGN.md §2): every MIDAS mechanism consumes only the complex gains
// h_jk from antenna k to client j, and the model reproduces the two
// structural properties those mechanisms exploit — the large path-loss
// disparity across distributed antennas, and the higher-rank channel
// matrices that uncorrelated DAS fading produces.
package channel

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Params configures the propagation model. ParamsDefault matches the
// calibration targets in DESIGN.md §6 (CAS SISO median SNR ≈ 10–15 dB at
// enterprise-office distances; DAS median gain ≈ +5 dB).
type Params struct {
	// CarrierGHz is the carrier frequency; 802.11ac operates at 5 GHz.
	CarrierGHz float64
	// RefLossDB is the path loss at the 1 m reference distance.
	RefLossDB float64
	// PathLossExp is the log-distance path loss exponent (≈3 indoors).
	PathLossExp float64
	// ShadowSigmaDB is the log-normal shadowing standard deviation.
	ShadowSigmaDB float64
	// TxPowerDBm is the per-antenna transmit power (802.11ac per-antenna
	// power constraint P, §3.1.1).
	TxPowerDBm float64
	// NoiseFloorDBm is the receiver noise plus interference floor.
	NoiseFloorDBm float64
	// CASCorrelation is the fading correlation coefficient between
	// adjacent co-located antennas (exponential model); 0 for DAS.
	CASCorrelation float64
	// WallDB, RoomW, RoomH and MaxWallDB override the obstruction field's
	// defaults when non-zero, letting environments differ (the enterprise
	// office has larger rooms than the crowded lab, §5.2.2).
	WallDB    float64
	RoomW     float64
	RoomH     float64
	MaxWallDB float64
	// Doppler controls Gauss–Markov channel evolution between frames:
	// h' = sqrt(1-a²)·h + a·innovation, with a = Doppler. 0 freezes the
	// channel within a topology.
	Doppler float64
}

// Default returns the calibrated parameter set used by all experiments.
func Default() Params {
	return Params{
		CarrierGHz:     5.24,
		RefLossDB:      46.7, // free-space loss at 1 m, 5.24 GHz
		PathLossExp:    3.5,
		ShadowSigmaDB:  4.0,
		TxPowerDBm:     24.0,
		NoiseFloorDBm:  -75.0,
		CASCorrelation: 0.6,
		Doppler:        0.05,
	}
}

// NewField builds the obstruction field for these parameters and seed,
// applying any room/wall overrides.
func (p Params) NewField(seed int64) *ShadowField {
	f := NewShadowField(seed, p.ShadowSigmaDB)
	if p.WallDB > 0 {
		f.WallDB = p.WallDB
	}
	if p.RoomW > 0 {
		f.RoomW = p.RoomW
		f.offX = hashToUnit(seed, 0, 0, 2) * f.RoomW
	}
	if p.RoomH > 0 {
		f.RoomH = p.RoomH
		f.offY = hashToUnit(seed, 0, 0, 3) * f.RoomH
	}
	if p.MaxWallDB > 0 {
		f.MaxWallDB = p.MaxWallDB
	}
	return f
}

// PathLossDB returns the distance-dependent path loss in dB at distance
// d metres. Distances below 1 m clamp to the reference distance.
func (p Params) PathLossDB(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return p.RefLossDB + 10*p.PathLossExp*math.Log10(d)
}

// MeanRxPowerDBm returns the shadowing- and fading-averaged receive power
// at distance d for a single transmit antenna at full per-antenna power.
func (p Params) MeanRxPowerDBm(d float64) float64 {
	return p.TxPowerDBm - p.PathLossDB(d)
}

// MeanSNRdB returns the average link SNR at distance d.
func (p Params) MeanSNRdB(d float64) float64 {
	return p.MeanRxPowerDBm(d) - p.NoiseFloorDBm
}

// NoiseLinear returns the noise floor in linear milliwatt units.
func (p Params) NoiseLinear() float64 { return stats.Milliwatt(p.NoiseFloorDBm) }

// TxPowerLinear returns the per-antenna power constraint in linear
// milliwatt units.
func (p Params) TxPowerLinear() float64 { return stats.Milliwatt(p.TxPowerDBm) }

// RangeAt returns the distance at which the mean SNR falls to snrDB — the
// nominal coverage (or carrier-sense) range for that threshold.
func (p Params) RangeAt(snrDB float64) float64 {
	// TxPower - RefLoss - 10·n·log10(d) - Noise = snr  =>  solve for d.
	budget := p.TxPowerDBm - p.RefLossDB - p.NoiseFloorDBm - snrDB
	return math.Pow(10, budget/(10*p.PathLossExp))
}

// Antenna is a transmit antenna position together with the AP (co-location
// group) it belongs to. Antennas of one CAS AP share correlated fading;
// all other pairs fade independently.
type Antenna struct {
	Pos   geom.Point
	AP    int // AP index; antennas with the same AP and CAS deployment correlate
	Local int // index within the AP's array (spacing order for correlation)
}

// Model generates channel realisations for a fixed set of antennas and
// clients. Shadowing is drawn once per (antenna, client) pair at
// construction — it models obstacles, which do not change across frames —
// while small-scale fading can be redrawn or evolved per frame.
type Model struct {
	P        Params
	antennas []Antenna
	clients  []geom.Point
	field    *ShadowField
	shadow   [][]float64 // [client][antenna] linear shadowing factor (cache)
	correl   bool        // apply CAS correlation within AP groups
	src      *rng.Source
	// fading state for Evolve: [client][antenna] normalised CN(0,1) gains
	fading [][]complex128
}

// NewModel builds a channel model. correlated selects CAS-style antenna
// correlation within each AP group (set true for co-located arrays).
// The source is split internally; the caller's stream is not advanced.
func NewModel(p Params, antennas []Antenna, clients []geom.Point, correlated bool, src *rng.Source) *Model {
	m := &Model{
		P:        p,
		antennas: antennas,
		clients:  clients,
		correl:   correlated,
		src:      src.Split("channel"),
	}
	m.field = p.NewField(src.Split("shadow").Seed())
	m.shadow = make([][]float64, len(clients))
	for j := range clients {
		m.shadow[j] = make([]float64, len(antennas))
		for k := range antennas {
			m.shadow[j][k] = m.field.Shadow(antennas[k].Pos, clients[j])
		}
	}
	m.redraw()
	return m
}

// Field returns the shadow-fading field underlying this model, so the
// medium (mac.Air) can sense through the same walls the data plane fades
// through.
func (m *Model) Field() *ShadowField { return m.field }

// NumAntennas returns the number of transmit antennas.
func (m *Model) NumAntennas() int { return len(m.antennas) }

// NumClients returns the number of client positions.
func (m *Model) NumClients() int { return len(m.clients) }

// redraw resamples all small-scale fading from scratch.
func (m *Model) redraw() {
	m.fading = make([][]complex128, len(m.clients))
	for j := range m.clients {
		m.fading[j] = m.drawFadingRow()
	}
}

// drawFadingRow returns CN(0,1) fading for one client across all antennas,
// applying intra-AP correlation when configured.
func (m *Model) drawFadingRow() []complex128 {
	f := make([]complex128, len(m.antennas))
	for k := range f {
		f[k] = m.src.ComplexCircular(1)
	}
	if !m.correl || m.P.CASCorrelation == 0 {
		return f
	}
	// Group antennas by AP and correlate within each group using the
	// exponential correlation model R_ik = ρ^{|i-k|} via Cholesky.
	groups := map[int][]int{}
	for idx, a := range m.antennas {
		groups[a.AP] = append(groups[a.AP], idx)
	}
	for _, idxs := range groups {
		if len(idxs) < 2 {
			continue
		}
		l := choleskyExpCorr(m.P.CASCorrelation, len(idxs))
		raw := make([]complex128, len(idxs))
		for i, idx := range idxs {
			raw[i] = f[idx]
		}
		for i, idx := range idxs {
			var s complex128
			for q := 0; q <= i; q++ {
				s += complex(l[i][q], 0) * raw[q]
			}
			f[idx] = s
		}
	}
	return f
}

// choleskyExpCorr returns the lower Cholesky factor of the n×n exponential
// correlation matrix R_ik = rho^{|i-k|}.
func choleskyExpCorr(rho float64, n int) [][]float64 {
	r := make([][]float64, n)
	for i := range r {
		r[i] = make([]float64, n)
		for k := range r[i] {
			d := i - k
			if d < 0 {
				d = -d
			}
			r[i][k] = math.Pow(rho, float64(d))
		}
	}
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for k := 0; k <= i; k++ {
			s := r[i][k]
			for q := 0; q < k; q++ {
				s -= l[i][q] * l[k][q]
			}
			if i == k {
				if s <= 0 {
					panic(fmt.Sprintf("channel: correlation matrix not PD (rho=%v)", rho))
				}
				l[i][i] = math.Sqrt(s)
			} else {
				l[i][k] = s / l[k][k]
			}
		}
	}
	return l
}

// Evolve advances the small-scale fading by one coherence step using the
// Gauss–Markov model with the configured Doppler. With Doppler 0 this is
// a no-op.
func (m *Model) Evolve() {
	a := m.P.Doppler
	if a == 0 {
		return
	}
	keep := complex(math.Sqrt(1-a*a), 0)
	for j := range m.fading {
		innov := m.drawFadingRow()
		for k := range m.fading[j] {
			m.fading[j][k] = keep*m.fading[j][k] + complex(a, 0)*innov[k]
		}
	}
}

// Resample draws a completely fresh fading realisation (new frame far
// beyond the coherence time).
func (m *Model) Resample() { m.redraw() }

// Gain returns the instantaneous complex channel gain h_jk from antenna k
// to client j, in sqrt-milliwatt units per unit transmit amplitude: the
// received power from power P on antenna k is |h_jk|²·P.
func (m *Model) Gain(j, k int) complex128 {
	d := m.antennas[k].Pos.Dist(m.clients[j])
	pl := stats.Linear(-m.P.PathLossDB(d)) * m.shadow[j][k]
	return complex(math.Sqrt(pl), 0) * m.fading[j][k]
}

// Matrix returns the |clients|×|antennas| channel matrix H with entries
// h_jk for the given client subset (nil means all clients) and antenna
// subset (nil means all antennas). Rows are clients, columns antennas, as
// in Eq. 4 of the paper.
func (m *Model) Matrix(clientIdx, antennaIdx []int) *matrix.Mat {
	if clientIdx == nil {
		clientIdx = identityIndex(len(m.clients))
	}
	if antennaIdx == nil {
		antennaIdx = identityIndex(len(m.antennas))
	}
	h := matrix.New(len(clientIdx), len(antennaIdx))
	for r, j := range clientIdx {
		for c, k := range antennaIdx {
			h.Set(r, c, m.Gain(j, k))
		}
	}
	return h
}

func identityIndex(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// MeanRxPower returns the shadowed (but fading-averaged) receive power in
// linear mW at client j from antenna k at full per-antenna power. This is
// the long-term RSSI that MIDAS's virtual packet tagging ranks antennas by
// (§3.2.4).
func (m *Model) MeanRxPower(j, k int) float64 {
	d := m.antennas[k].Pos.Dist(m.clients[j])
	return m.P.TxPowerLinear() * stats.Linear(-m.P.PathLossDB(d)) * m.shadow[j][k]
}

// SNRdB returns the instantaneous single-antenna link SNR in dB from
// antenna k to client j at full per-antenna power.
func (m *Model) SNRdB(j, k int) float64 {
	g := m.Gain(j, k)
	p := (real(g)*real(g) + imag(g)*imag(g)) * m.P.TxPowerLinear()
	return stats.DB(p / m.P.NoiseLinear())
}

// BestAntennaSNRdB returns the best instantaneous single-antenna SNR for
// client j across the given antenna subset (nil = all), and the antenna.
func (m *Model) BestAntennaSNRdB(j int, antennaIdx []int) (int, float64) {
	if antennaIdx == nil {
		antennaIdx = identityIndex(len(m.antennas))
	}
	best, bestSNR := -1, math.Inf(-1)
	for _, k := range antennaIdx {
		if s := m.SNRdB(j, k); s > bestSNR {
			best, bestSNR = k, s
		}
	}
	return best, bestSNR
}

// PowerAtPoint returns the received power (linear mW) at an arbitrary
// point from a transmitter at txPos sending with txPowerDBm, using path
// loss only (no shadowing or fading) — used for carrier-sense and
// coverage-map calculations where deterministic geometry is wanted.
func (p Params) PowerAtPoint(txPos, rxPos geom.Point, txPowerDBm float64) float64 {
	d := txPos.Dist(rxPos)
	return stats.Milliwatt(txPowerDBm - p.PathLossDB(d))
}
