package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestPathLossMonotone(t *testing.T) {
	p := Default()
	prev := p.PathLossDB(1)
	for d := 2.0; d <= 100; d *= 1.5 {
		pl := p.PathLossDB(d)
		if pl <= prev {
			t.Fatalf("path loss not increasing at d=%v", d)
		}
		prev = pl
	}
}

func TestPathLossClampBelow1m(t *testing.T) {
	p := Default()
	if p.PathLossDB(0.1) != p.PathLossDB(1) {
		t.Error("path loss below 1 m should clamp to reference")
	}
}

func TestPathLossSlope(t *testing.T) {
	p := Default()
	// 10x distance should add 10*n dB.
	got := p.PathLossDB(10) - p.PathLossDB(1)
	if math.Abs(got-10*p.PathLossExp) > 1e-9 {
		t.Errorf("decade slope = %v, want %v", got, 10*p.PathLossExp)
	}
}

func TestRangeAtInvertsSNR(t *testing.T) {
	p := Default()
	for _, snr := range []float64{0, 10, 20} {
		d := p.RangeAt(snr)
		if got := p.MeanSNRdB(d); math.Abs(got-snr) > 1e-9 {
			t.Errorf("MeanSNRdB(RangeAt(%v)) = %v", snr, got)
		}
	}
}

func TestLinearHelpers(t *testing.T) {
	p := Default()
	if math.Abs(p.TxPowerLinear()-stats.Milliwatt(p.TxPowerDBm)) > 1e-9 {
		t.Errorf("TxPowerLinear = %v", p.TxPowerLinear())
	}
	if p.NoiseLinear() <= 0 {
		t.Error("noise must be positive")
	}
}

func mkModel(correlated bool, seed int64) *Model {
	p := Default()
	antennas := []Antenna{
		{Pos: geom.Pt(0, 0), AP: 0, Local: 0},
		{Pos: geom.Pt(0.03, 0), AP: 0, Local: 1},
		{Pos: geom.Pt(0.06, 0), AP: 0, Local: 2},
		{Pos: geom.Pt(0.09, 0), AP: 0, Local: 3},
	}
	clients := []geom.Point{geom.Pt(8, 0), geom.Pt(0, 10), geom.Pt(-6, -6)}
	return NewModel(p, antennas, clients, correlated, rng.New(seed))
}

func TestModelShapes(t *testing.T) {
	m := mkModel(false, 1)
	if m.NumAntennas() != 4 || m.NumClients() != 3 {
		t.Fatalf("shape %d,%d", m.NumAntennas(), m.NumClients())
	}
	h := m.Matrix(nil, nil)
	if h.Rows() != 3 || h.Cols() != 4 {
		t.Fatalf("H is %dx%d", h.Rows(), h.Cols())
	}
	sub := m.Matrix([]int{0, 2}, []int{1})
	if sub.Rows() != 2 || sub.Cols() != 1 {
		t.Fatalf("sub H is %dx%d", sub.Rows(), sub.Cols())
	}
	if sub.At(0, 0) != h.At(0, 1) || sub.At(1, 0) != h.At(2, 1) {
		t.Error("submatrix entries do not match full matrix")
	}
}

func TestModelDeterminism(t *testing.T) {
	a := mkModel(true, 42)
	b := mkModel(true, 42)
	ha, hb := a.Matrix(nil, nil), b.Matrix(nil, nil)
	if !ha.Equalish(hb, 0) {
		t.Error("same seed should give identical channels")
	}
}

func TestFadingMeanPowerMatchesPathLoss(t *testing.T) {
	// Average |h|² over many resamples should approach path loss ×
	// shadowing for each link.
	m := mkModel(false, 7)
	const iters = 4000
	sum := 0.0
	for i := 0; i < iters; i++ {
		g := m.Gain(0, 0)
		sum += real(g)*real(g) + imag(g)*imag(g)
		m.Resample()
	}
	got := sum / iters
	d := geom.Pt(8, 0).Dist(geom.Pt(0, 0))
	want := stats.Linear(-m.P.PathLossDB(d)) * m.shadow[0][0]
	if math.Abs(got/want-1) > 0.1 {
		t.Errorf("mean |h|² = %v, want ~%v", got, want)
	}
}

func TestCorrelationCASVsDAS(t *testing.T) {
	// Adjacent co-located antennas should show high fading correlation;
	// uncorrelated mode should show near-zero.
	corrOf := func(correlated bool) float64 {
		m := mkModel(correlated, 11)
		const n = 6000
		var sum complex128
		var p0, p1 float64
		for i := 0; i < n; i++ {
			f0, f1 := m.fading[0][0], m.fading[0][1]
			sum += f0 * cmplx.Conj(f1)
			p0 += real(f0)*real(f0) + imag(f0)*imag(f0)
			p1 += real(f1)*real(f1) + imag(f1)*imag(f1)
			m.Resample()
		}
		return cmplx.Abs(sum) / math.Sqrt(p0*p1)
	}
	cas := corrOf(true)
	das := corrOf(false)
	if cas < 0.45 {
		t.Errorf("CAS adjacent-antenna correlation = %v, want ≈0.6", cas)
	}
	if das > 0.1 {
		t.Errorf("DAS correlation = %v, want ≈0", das)
	}
}

func TestEvolvePreservesPowerAndDecorrelates(t *testing.T) {
	m := mkModel(false, 13)
	g0 := m.Gain(0, 0)
	// Single step with small Doppler keeps the channel close.
	m.Evolve()
	g1 := m.Gain(0, 0)
	if cmplx.Abs(g1-g0) > cmplx.Abs(g0) {
		t.Log("large single-step change is possible but unusual")
	}
	// Many steps decorrelate: correlate g0 with g after 2000 steps over
	// several trials.
	var num complex128
	var den float64
	for trial := 0; trial < 40; trial++ {
		m2 := mkModel(false, int64(100+trial))
		a := m2.fading[0][0]
		for i := 0; i < 2000; i++ {
			m2.Evolve()
		}
		b := m2.fading[0][0]
		num += a * cmplx.Conj(b)
		den += cmplx.Abs(a) * cmplx.Abs(b)
	}
	if corr := cmplx.Abs(num) / den; corr > 0.35 {
		t.Errorf("long-run fading correlation = %v, want small", corr)
	}
}

func TestEvolveNoopWithZeroDoppler(t *testing.T) {
	p := Default()
	p.Doppler = 0
	m := NewModel(p, []Antenna{{Pos: geom.Pt(0, 0)}}, []geom.Point{geom.Pt(5, 0)}, false, rng.New(3))
	before := m.Gain(0, 0)
	m.Evolve()
	if m.Gain(0, 0) != before {
		t.Error("Evolve with Doppler=0 must not change the channel")
	}
}

func TestSNRDecreasesWithDistance(t *testing.T) {
	p := Default()
	antennas := []Antenna{{Pos: geom.Pt(0, 0)}}
	clients := []geom.Point{geom.Pt(3, 0), geom.Pt(30, 0)}
	// Average over fading to compare reliably.
	var near, far stats.Summary
	m := NewModel(p, antennas, clients, false, rng.New(17))
	for i := 0; i < 500; i++ {
		near.Add(m.SNRdB(0, 0))
		far.Add(m.SNRdB(1, 0))
		m.Resample()
	}
	if near.Mean() <= far.Mean() {
		t.Errorf("near SNR %v should exceed far SNR %v", near.Mean(), far.Mean())
	}
}

func TestBestAntennaSNR(t *testing.T) {
	p := Default()
	p.ShadowSigmaDB = 0 // make geometry decisive
	antennas := []Antenna{
		{Pos: geom.Pt(0, 0), AP: 0},
		{Pos: geom.Pt(100, 0), AP: 1},
	}
	clients := []geom.Point{geom.Pt(2, 0)}
	m := NewModel(p, antennas, clients, false, rng.New(19))
	votes := 0
	for i := 0; i < 200; i++ {
		k, snr := m.BestAntennaSNRdB(0, nil)
		if math.IsInf(snr, 0) {
			t.Fatal("bad SNR")
		}
		if k == 0 {
			votes++
		}
		m.Resample()
	}
	if votes < 190 {
		t.Errorf("nearest antenna should nearly always win: %d/200", votes)
	}
}

func TestMeanRxPowerIsFadingFree(t *testing.T) {
	m := mkModel(false, 23)
	a := m.MeanRxPower(0, 0)
	m.Resample()
	if b := m.MeanRxPower(0, 0); a != b {
		t.Error("MeanRxPower must not depend on fading state")
	}
	if a <= 0 {
		t.Error("MeanRxPower must be positive")
	}
}

func TestPowerAtPoint(t *testing.T) {
	p := Default()
	near := p.PowerAtPoint(geom.Pt(0, 0), geom.Pt(5, 0), 20)
	far := p.PowerAtPoint(geom.Pt(0, 0), geom.Pt(50, 0), 20)
	if near <= far {
		t.Error("power should fall with distance")
	}
	// 20 dBm at 1 m with RefLossDB loss.
	got := p.PowerAtPoint(geom.Pt(0, 0), geom.Pt(1, 0), 20)
	want := stats.Milliwatt(20 - p.RefLossDB)
	if math.Abs(got/want-1) > 1e-9 {
		t.Errorf("PowerAtPoint(1m) = %v, want %v", got, want)
	}
}

func TestCholeskyExpCorr(t *testing.T) {
	l := choleskyExpCorr(0.6, 4)
	// Reconstruct R = L·Lᵀ and compare with ρ^{|i-k|}.
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			s := 0.0
			for q := 0; q < 4; q++ {
				s += l[i][q] * l[k][q]
			}
			d := i - k
			if d < 0 {
				d = -d
			}
			want := math.Pow(0.6, float64(d))
			if math.Abs(s-want) > 1e-12 {
				t.Fatalf("R[%d][%d] = %v, want %v", i, k, s, want)
			}
		}
	}
}

// Calibration test (DESIGN.md §6): with the default parameters, a client
// at enterprise-office distances sees a usable median SNR.
func TestCalibrationMedianSNR(t *testing.T) {
	p := Default()
	src := rng.New(31)
	snrs := stats.NewSample()
	for topo := 0; topo < 200; topo++ {
		ts := src.SplitN("topo", topo)
		x, y := ts.PointInDisc(12) // client within 12 m of the AP
		m := NewModel(p,
			[]Antenna{{Pos: geom.Pt(0, 0)}},
			[]geom.Point{geom.Pt(x, y)}, false, ts)
		snrs.Add(m.SNRdB(0, 0))
	}
	med := snrs.MustMedian()
	// The figure-relevant quantity (Fig 7) maps each client to its BEST
	// antenna and sits several dB above this single-random-antenna
	// median, so the band here is wide.
	if med < 6 || med > 25 {
		t.Errorf("calibration: median CAS SISO SNR = %v dB, want 6–25", med)
	}
}
