package channel

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"repro/internal/geom"
)

// ShadowField is a deterministic obstruction model for the paper's office
// testbeds: a multi-wall (Motley–Keenan) loss over a room grid plus a
// small per-link log-normal residual. It is the root of the spatial
// diversity every MIDAS mechanism leverages — carrier sensing is local,
// deadzones and hidden terminals exist, and distributed antennas see
// genuinely different channels.
//
// Crucially the model is *directional*: the loss of a link depends on the
// walls the straight path crosses, so an antenna that is isolated from an
// interferer two rooms away is still strong inside its own room. This is
// the property §3.2.4 relies on ("the channel state of the antenna close
// to the client reflects the potential state of the client"), and the
// property the co-located baseline cannot exploit.
//
// The same field drives the data plane (channel.Model) and the control
// plane (mac.Air): a link that is weak for sensing is equally weak for
// payload. Walls are anchored on a per-seed offset grid so different
// topology seeds see different floor plans.
type ShadowField struct {
	Seed    int64
	SigmaDB float64 // per-link log-normal residual spread
	// WallDB is the penetration loss per wall crossed.
	WallDB float64
	// RoomW, RoomH are the office room dimensions in metres.
	RoomW, RoomH float64
	// MaxWallDB caps the aggregate wall loss (leakage/diffraction floor).
	MaxWallDB float64

	offX, offY float64 // per-seed grid offset
}

// Default obstruction parameters (typical enterprise drywall offices).
const (
	DefaultWallDB    = 10.0
	DefaultRoomW     = 10.0
	DefaultRoomH     = 12.0
	DefaultMaxWallDB = 50.0
)

// NewShadowField returns a field with the given seed and residual spread
// and default wall parameters.
func NewShadowField(seed int64, sigmaDB float64) *ShadowField {
	f := &ShadowField{
		Seed:      seed,
		SigmaDB:   sigmaDB,
		WallDB:    DefaultWallDB,
		RoomW:     DefaultRoomW,
		RoomH:     DefaultRoomH,
		MaxWallDB: DefaultMaxWallDB,
	}
	f.offX = hashToUnit(seed, 0, 0, 2) * f.RoomW
	f.offY = hashToUnit(seed, 0, 0, 3) * f.RoomH
	return f
}

// Shadow returns the linear obstruction factor for the link a–b (≤ ~1 up
// to the residual).
func (f *ShadowField) Shadow(a, b geom.Point) float64 {
	if f == nil {
		return 1
	}
	return math.Pow(10, f.ShadowDB(a, b)/10)
}

// ShadowDB returns the obstruction gain in dB for the link a–b (negative
// for walls, ± residual).
func (f *ShadowField) ShadowDB(a, b geom.Point) float64 {
	if f == nil {
		return 0
	}
	loss := f.WallDB * float64(f.Walls(a, b))
	if loss > f.MaxWallDB {
		loss = f.MaxWallDB
	}
	return -loss + f.residualDB(a, b)
}

// Walls returns the number of walls the straight path a–b crosses on the
// room grid.
func (f *ShadowField) Walls(a, b geom.Point) int {
	if f == nil || f.WallDB == 0 {
		return 0
	}
	ax := math.Floor((a.X - f.offX) / f.RoomW)
	bx := math.Floor((b.X - f.offX) / f.RoomW)
	ay := math.Floor((a.Y - f.offY) / f.RoomH)
	by := math.Floor((b.Y - f.offY) / f.RoomH)
	return int(math.Abs(ax-bx) + math.Abs(ay-by))
}

// SameRoom reports whether a and b share an office room.
func (f *ShadowField) SameRoom(a, b geom.Point) bool {
	return f.Walls(a, b) == 0
}

// residualDB is the per-link log-normal residual (furniture, multipath
// clutter): deterministic in the quantised endpoint pair, symmetric.
func (f *ShadowField) residualDB(a, b geom.Point) float64 {
	if f.SigmaDB == 0 {
		return 0
	}
	const q = 0.1 // 10 cm quantisation
	ax, ay := int64(math.Round(a.X/q)), int64(math.Round(a.Y/q))
	bx, by := int64(math.Round(b.X/q)), int64(math.Round(b.Y/q))
	if ax > bx || (ax == bx && ay > by) {
		ax, ay, bx, by = bx, by, ax, ay
	}
	key := mix(mix(mix(uint64(ax), uint64(ay)), uint64(bx)), uint64(by))
	u1 := hashToUnit(f.Seed, int64(key), 0, 0)
	u2 := hashToUnit(f.Seed, int64(key), 0, 1)
	// Box–Muller: deterministic standard normal from the two uniforms.
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return f.SigmaDB * z
}

func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// hashToUnit maps a key to a uniform value in (0, 1).
func hashToUnit(seed, i, j int64, salt byte) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range [...]int64{seed, i, j} {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte{salt})
	u := h.Sum64()
	// 53-bit mantissa → uniform in [0,1); shift away from exact 0.
	x := float64(u>>11) / float64(1<<53)
	if x < 1e-12 {
		x = 1e-12
	}
	return x
}
