# CI entry points for the MIDAS reproduction. `make ci` is what a
# checkin must keep green: formatting, vet, build, the full test suite,
# a race pass over the concurrency-bearing packages, the golden-figure
# regression suite, the examples, a reduced-scale benchmark smoke that
# exercises the parallel experiment runner end to end, an SLO-gated
# load smoke driving a live midas-serve with midas-loadgen, and a
# disruption e2e that SIGTERMs and kill -9s midas-serve under load and
# proves the durable result store loses nothing.

GO ?= go

.PHONY: ci fmt-check vet build test test-race golden examples bench-smoke serve-smoke loadgen-smoke loadgen drain-e2e drain-e2e-full cluster-e2e cluster-e2e-full bench bench-snapshot bench-compare alloc-guard cover fmt

# (`test` already runs the golden suite once and `test-race` replays it
# under the race detector; the explicit `golden` target is for focused
# local runs, not a third CI pass.)
#
# This exact target is what .github/workflows/ci.yml runs — the
# workflow is a thin wrapper, so the local gate and the per-commit gate
# cannot diverge.
ci: fmt-check vet build test test-race alloc-guard cover bench-smoke serve-smoke loadgen-smoke drain-e2e cluster-e2e examples

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector over the packages that own concurrency: the worker
# pool, the scenario engine dispatching expanded runs through it, the
# experiment drivers, the serving layer's job pool + cache, the
# dispatch coordinator's lease/requeue state machine, and the job
# journal it checkpoints through.
test-race:
	$(GO) test -race ./internal/scenario ./internal/runner ./internal/sim ./internal/service ./internal/store ./internal/telemetry ./internal/dispatch ./internal/journal ./internal/api

# The golden-figure regression suite: replay every registered
# scenario's committed spec at parallelism 1 and 8 and require
# byte-identical results. After an intentional output change:
#   go test ./internal/scenario -run TestGoldenFigures -update
golden:
	$(GO) test -run TestGoldenFigures ./internal/scenario

# Run every example against its committed spec file so they cannot
# silently rot.
examples:
	$(GO) run ./examples/quickstart -spec examples/quickstart/spec.json > /dev/null
	$(GO) run ./examples/office -spec examples/office/spec.json > /dev/null
	$(GO) run ./examples/hiddenterminal -spec examples/hiddenterminal/spec.json > /dev/null
	$(GO) run ./examples/dense -spec examples/dense/spec.json > /dev/null

# A fast end-to-end pass through the runner: a PHY figure, a MAC figure
# and one short DES experiment, at reduced scale, through every sink,
# plus a scenario-mode sweep through midas-sim.
bench-smoke:
	$(GO) run ./cmd/midas-bench -figure 3 -topos 8 > /dev/null
	$(GO) run ./cmd/midas-bench -figure 12 -topos 8 -format json -out /dev/null
	$(GO) run ./cmd/midas-bench -figure 15 -topos 4 -simtime 50ms -format csv > /dev/null
	$(GO) run ./cmd/midas-sim -scenario fig12 -set topologies=4 -set seed=3,4 > /dev/null
	$(GO) run ./cmd/midas-sim -scenario fig12 -set topologies=2 -replicates 3 -format json > /dev/null
	$(GO) test -run='^$$' -bench='BenchmarkFig12|BenchmarkFig15Replicated' -benchtime=1x .

# End-to-end pass through the serving layer: start midas-serve on an
# ephemeral port, submit a reduced-scale fig12 spec over HTTP, poll to
# completion, diff the served result against `midas-sim -spec` for the
# same spec (only the meta tool name may differ), verify the spec-hash
# cache answers a resubmission byte-identically, and drain on SIGTERM.
serve-smoke:
	./scripts/serve-smoke.sh

# SLO-gated load smoke: boot midas-serve, drive it with midas-loadgen
# for a few seconds at a mostly-cached mix, and fail if the measured
# latency quantiles or error rate break the (deliberately generous —
# this is a shared CI box) SLOs. The nightly workflow runs the same
# script at full scale with tighter knobs via LOADGEN_* overrides.
loadgen-smoke:
	./scripts/loadgen-slo.sh

# Full-scale local load run: longer window, open-loop arrivals too.
loadgen:
	LOADGEN_DURATION=30s LOADGEN_SLO_P50=500ms LOADGEN_SLO_P99=5s ./scripts/loadgen-slo.sh

# Disruption e2e for the durable result store: SIGTERM midas-serve
# under load and require every accepted job to drain to a collectable
# result, then kill -9 it under load, restart on the same store dir,
# and require every completed spec to be served byte-identical from
# disk with no engine re-run. The short mode runs in `make ci`; the
# nightly workflow runs the full cycle and uploads its artifacts.
drain-e2e:
	./scripts/drain-e2e.sh

drain-e2e-full:
	DRAIN_E2E_FULL=1 ./scripts/drain-e2e.sh

# Distributed-execution e2e: coordinator + workers over the shard lease
# protocol, kill -9 a worker holding a lease mid-sweep, and require the
# shard to requeue on lease expiry, the merged result to byte-match the
# single-process run, and accepted completions to equal the shard count
# exactly (no duplicate engine-run side effects). Also kill -9 the
# coordinator itself mid-sweep and require the restart to resume the
# job from the dispatch journal with zero re-execution of shards whose
# results already reached the store. Finally, run two coordinators and
# a direct-publishing worker over one shared store directory: kill -9
# the worker between its store publish and its completion POST and
# require the coordinator to recover the shard from the store, then
# require the sibling coordinator to serve the sweep byte-identically
# as a store hit. Short mode runs in `make ci`; the nightly workflow
# runs the full scale with journal/store listings as artifacts.
cluster-e2e:
	./scripts/cluster-e2e.sh

cluster-e2e-full:
	CLUSTER_E2E_FULL=1 ./scripts/cluster-e2e.sh

# Full-scale root benchmarks (slow).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# The zero-allocation guards for the precoding hot path, run explicitly so
# a CI log shows them even though `make test` also covers them.
alloc-guard:
	$(GO) test -run 'TestSolverZeroAlloc|TestWorkspaceZeroAlloc' -v ./internal/precoding ./internal/matrix

# Re-measure the kernel micro-benchmarks (before/after pairs against the
# frozen pre-workspace implementations in internal/bench) plus reduced-
# scale figure benchmarks, and write the committed baseline. To check a
# working tree against the committed file, write to a scratch path and
# compare the "after" ns/op columns (timings never reproduce bitwise):
#   make bench-snapshot BENCH_OUT=/tmp/now.json bench-compare
BENCH_OUT ?= BENCH_PR2.json
bench-snapshot:
	$(GO) run ./cmd/midas-bench -kernels -topos 8 -rounds 3 -out $(BENCH_OUT)

# Column-wise regression gate against the committed baseline: fail if
# any kernel regressed more than BENCH_MAX_REGRESS%. The default gate
# metric is the after/before ns-op ratio, which is measured same-run
# same-host inside each snapshot, so the comparison holds across
# machines (the nightly runner vs whoever committed BENCH_PR2.json);
# pass BENCH_METRIC=ns for an absolute same-machine comparison. The
# nightly workflow snapshots to a scratch BENCH_OUT and runs this.
BENCH_MAX_REGRESS ?= 25
BENCH_METRIC ?= ratio
bench-compare:
	$(GO) run ./cmd/midas-benchdiff -base BENCH_PR2.json -new $(BENCH_OUT) -max-regress $(BENCH_MAX_REGRESS) -metric $(BENCH_METRIC)

# Coverage floors for the layers whose bugs are subtle at runtime: the
# stats accumulators and the scenario/replication engine (wrong numbers
# type-check fine), the serving layer (lifecycle/caching races
# surface only under load), and the durable store (crash-safety bugs
# surface only on the restart after the crash) must stay >= 80%
# line-covered, as must the dispatch coordinator (lease-requeue
# correctness is exactly the kind of logic that rots silently) and the
# job journal (a replay bug only surfaces on the restart after the
# crash). The
# per-package totals print either way; a package under its floor fails
# the target (and `make ci`).
COVER_FLOOR = 80
cover:
	@set -e; for pkg in ./internal/stats ./internal/scenario ./internal/service ./internal/store ./internal/telemetry ./internal/dispatch ./internal/journal ./internal/api; do \
		profile=$$(mktemp); \
		$(GO) test -coverprofile=$$profile $$pkg > /dev/null; \
		pct=$$($(GO) tool cover -func=$$profile | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		rm -f $$profile; \
		echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v m="$(COVER_FLOOR)" 'BEGIN { exit (p >= m) ? 0 : 1 }' || \
			{ echo "coverage of $$pkg fell below $(COVER_FLOOR)%"; exit 1; }; \
	done

fmt:
	gofmt -w .
