# CI entry points for the MIDAS reproduction. `make ci` is what a
# checkin must keep green: formatting, vet, build, the full test suite,
# and a reduced-scale benchmark smoke that exercises the parallel
# experiment runner end to end.

GO ?= go

.PHONY: ci fmt-check vet build test bench-smoke bench bench-snapshot alloc-guard fmt

ci: fmt-check vet build test alloc-guard bench-smoke

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# A fast end-to-end pass through the runner: a PHY figure, a MAC figure
# and one short DES experiment, at reduced scale, through every sink.
bench-smoke:
	$(GO) run ./cmd/midas-bench -figure 3 -topos 8 > /dev/null
	$(GO) run ./cmd/midas-bench -figure 12 -topos 8 -format json -out /dev/null
	$(GO) run ./cmd/midas-bench -figure 15 -topos 4 -simtime 50ms -format csv > /dev/null
	$(GO) test -run='^$$' -bench=BenchmarkFig12 -benchtime=1x .

# Full-scale root benchmarks (slow).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# The zero-allocation guards for the precoding hot path, run explicitly so
# a CI log shows them even though `make test` also covers them.
alloc-guard:
	$(GO) test -run 'TestSolverZeroAlloc|TestWorkspaceZeroAlloc' -v ./internal/precoding ./internal/matrix

# Re-measure the kernel micro-benchmarks (before/after pairs against the
# frozen pre-workspace implementations in internal/bench) plus reduced-
# scale figure benchmarks, and write the committed baseline. To check a
# working tree against the committed file, write to a scratch path and
# compare the "after" ns/op columns (timings never reproduce bitwise):
#   go run ./cmd/midas-bench -kernels -topos 8 -out /tmp/now.json
bench-snapshot:
	$(GO) run ./cmd/midas-bench -kernels -topos 8 -rounds 3 -out BENCH_PR2.json

fmt:
	gofmt -w .
