# CI entry points for the MIDAS reproduction. `make ci` is what a
# checkin must keep green: formatting, vet, build, the full test suite,
# and a reduced-scale benchmark smoke that exercises the parallel
# experiment runner end to end.

GO ?= go

.PHONY: ci fmt-check vet build test bench-smoke bench fmt

ci: fmt-check vet build test bench-smoke

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# A fast end-to-end pass through the runner: a PHY figure, a MAC figure
# and one short DES experiment, at reduced scale, through every sink.
bench-smoke:
	$(GO) run ./cmd/midas-bench -figure 3 -topos 8 > /dev/null
	$(GO) run ./cmd/midas-bench -figure 12 -topos 8 -format json -out /dev/null
	$(GO) run ./cmd/midas-bench -figure 15 -topos 4 -simtime 50ms -format csv > /dev/null
	$(GO) test -run='^$$' -bench=BenchmarkFig12 -benchtime=1x .

# Full-scale root benchmarks (slow).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

fmt:
	gofmt -w .
