// Command midas-serve is the long-running scenario server: the whole
// experiment registry behind an HTTP job API, with spec-hash result
// caching, so identical specs are computed once and then served from
// memory. With -store-dir, completed results are additionally
// persisted to a crash-safe on-disk store (internal/store) before
// their jobs report done, so a restart — clean or kill -9 — serves
// every previously computed spec from disk without re-running the
// engine.
//
//	midas-serve [-addr host:port] [-workers N] [-queue N] [-cache N]
//	            [-store-dir DIR] [-store-shared] [-store-max-bytes N]
//	            [-dispatch-listen host:port] [-min-workers N]
//	            [-lease-ttl DUR] [-shard-attempts N] [-resume=false]
//	            [-log text|json|off] [-pprof]
//
//	POST   /v1/jobs             submit a spec (midas-sim -spec schema)
//	GET    /v1/jobs/{id}        status + progress
//	GET    /v1/jobs/{id}/result result snapshot (JSON sink rendering)
//	GET    /v1/results/{hash}   content-addressed result snapshot
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/scenarios        registry listing with default specs
//	GET    /v1/metrics.json     JSON metrics snapshot
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text exposition
//	/debug/pprof/...            live profiling (only with -pprof)
//
// Per-job lifecycle events (submitted, running, finished) are logged
// as structured lines keyed by job ID and spec hash, plus one
// access-log line per HTTP request; -log picks the slog handler.
//
// -addr with port 0 binds an ephemeral port; the actual address is
// printed as "midas-serve listening on http://host:port" so scripted
// callers (make serve-smoke) can discover it. SIGINT/SIGTERM drain
// gracefully: in-flight jobs finish, then the process exits; a second
// signal cancels them.
//
// With -dispatch-listen, the server additionally runs as a dispatch
// coordinator: a second listener serves the shard-lease protocol
// (internal/dispatch) to midas-worker processes, and jobs whose specs
// expand to multiple runs are sharded across the worker fleet instead
// of the in-process pool — with byte-identical results, since both
// paths share the engine's decomposition. When fewer than -min-workers
// workers are polling, execution transparently falls back in-process,
// so a coordinator with no fleet degrades to exactly the PR 5 server.
//
// A coordinator with a store additionally journals every dispatched
// job (spec plus per-shard completion pointers, under
// <store-dir>/journal) and publishes each accepted shard result into
// the store by the shard spec's content address. On restart the
// journal's non-terminal jobs are re-admitted automatically (disable
// with -resume=false): shards whose results are already on disk are
// answered from the store without re-execution, so a kill -9 mid-sweep
// costs at most the shards that were in flight. The same addressing
// means sweeps sharing sweep points — across jobs, restarts or tenants
// of one store — compute each shared shard exactly once.
//
// With -store-shared, -store-dir may live on a shared filesystem
// written by several processes at once: sibling coordinators serve
// each other's results as store hits (no re-execution), and workers
// given the same mount (midas-worker -store-dir/-store-shared)
// publish shard results directly into the store, shrinking the
// completion POST to a hash-plus-digest acknowledgement that the
// coordinator verifies against the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"path/filepath"

	"repro/internal/dispatch"
	"repro/internal/journal"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

var (
	addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	workers  = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS); each job also fans expanded runs over the engine pool")
	queue    = flag.Int("queue", 0, "queued-job bound before submissions are rejected (0 = 64)")
	cache    = flag.Int("cache", 0, "spec-hash result cache entries (0 = 128, negative disables)")
	storeDir = flag.String("store-dir", "",
		"durable result store directory (empty = memory-only); created if absent, survives restarts and kill -9")
	storeShared = flag.Bool("store-shared", false,
		"treat -store-dir as a shared filesystem (NFS-style) written by multiple coordinators and workers: O_EXCL temp naming, per-process manifests, read-through to siblings' results")
	storeMaxBytes = flag.Int64("store-max-bytes", 0,
		"byte budget for -store-dir before LRU eviction (0 = unbounded)")
	retain  = flag.Int("retain", 0, "terminal jobs kept pollable before the oldest are forgotten (0 = 512)")
	drain   = flag.Duration("drain", time.Minute, "how long a shutdown signal waits for in-flight jobs before cancelling them")
	logFmt  = flag.String("log", "text", "structured log handler on stderr: text, json or off")
	pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

	dispatchListen = flag.String("dispatch-listen", "",
		"serve the shard-lease protocol to midas-worker fleets on this address (empty = no coordinator; port 0 picks an ephemeral port)")
	minWorkers = flag.Int("min-workers", 1,
		"dispatch multi-run jobs to the fleet only while at least this many workers are polling; below it, jobs run in-process")
	leaseTTL = flag.Duration("lease-ttl", 30*time.Second,
		"shard lease deadline; a worker silent this long after taking a shard has it requeued")
	shardAttempts = flag.Int("shard-attempts", 5,
		"lease attempts per shard before its job fails (requeues from expiry or worker errors consume the budget)")
	resume = flag.Bool("resume", true,
		"replay journaled in-flight sweeps at startup (journaling needs -store-dir and -dispatch-listen)")
)

// newLogger builds the slog logger the -log flag asks for.
func newLogger() (*slog.Logger, error) {
	switch *logFmt {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "off":
		return slog.New(slog.DiscardHandler), nil
	}
	return nil, fmt.Errorf("unknown -log format %q (want text, json or off)", *logFmt)
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "midas-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	log, err := newLogger()
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Split the machine between the job workers: a spec that does not
	// pin its own parallelism gets an even share of the cores, so W
	// concurrent jobs cannot oversubscribe the scheduler W-fold. The
	// budget travels per job through scenario.RunOptions — nothing
	// touches the sim.Parallelism process global, which concurrent
	// jobs would race on.
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var st *store.Store
	if *storeDir != "" {
		be, berr := openBackend(*storeDir)
		if berr != nil {
			return berr
		}
		st, err = store.Open(store.Config{Backend: be, MaxBytes: *storeMaxBytes, Log: log})
		if err != nil {
			return err
		}
		defer st.Close()
		stats := st.Stats()
		// Scripted callers (scripts/drain-e2e.sh) parse this line to
		// assert restart survival; keep the format stable.
		fmt.Printf("midas-serve store: %d entries, %d bytes warm from %s\n",
			stats.Entries, stats.Bytes, *storeDir)
	} else if *storeMaxBytes != 0 {
		return errors.New("-store-max-bytes needs -store-dir")
	} else if *storeShared {
		return errors.New("-store-shared needs -store-dir")
	}
	// One registry for the whole process: the service's instruments and
	// (when coordinating) the dispatch layer's render on the same
	// /metrics page.
	reg := telemetry.NewRegistry()

	// With -dispatch-listen, multi-run jobs go to the worker fleet via
	// the coordinator — unless too few workers are polling, in which
	// case (and for single-run specs, which have nothing to shard) the
	// job runs in-process exactly as before. Both paths share the
	// engine's decomposition, so the choice never shows in the bytes.
	var coord *dispatch.Coordinator
	var dln net.Listener
	if *dispatchListen != "" {
		dln, err = net.Listen("tcp", *dispatchListen)
		if err != nil {
			return err
		}
		// With a store, the coordinator journals every dispatched job
		// under the store dir and publishes each accepted shard result by
		// content address — which is what makes a kill -9 mid-sweep cost
		// at most the shards in flight.
		var jn *journal.Journal
		if st != nil {
			// The journal rides the same backend flavor as the store: on a
			// shared mount every coordinator sees every sibling's journal
			// entries, which is safe because entries are advisory resume
			// hints — a clobbered or foreign entry costs at most a
			// recomputation, never a wrong result.
			jbe, jerr := openBackend(filepath.Join(*storeDir, "journal"))
			if jerr != nil {
				return jerr
			}
			jn, err = journal.OpenBackend(jbe, log)
			if err != nil {
				return err
			}
			// Scripted callers (scripts/cluster-e2e.sh) parse this line to
			// assert resume; keep the format stable.
			fmt.Printf("midas-serve journal: %d interrupted job(s) recovered from %s\n",
				jn.Len(), filepath.Join(*storeDir, "journal"))
		}
		coord = dispatch.New(dispatch.Config{
			LeaseTTL:    *leaseTTL,
			MaxAttempts: *shardAttempts,
			Telemetry:   reg,
			Log:         log,
			Store:       st,
			Journal:     jn,
		})
		defer coord.Close()
	} else if *minWorkers != 1 || *leaseTTL != 30*time.Second || *shardAttempts != 5 {
		return errors.New("-min-workers/-lease-ttl/-shard-attempts need -dispatch-listen")
	}
	runFunc := scenario.RunResolved
	if coord != nil {
		// Recovered jobs must route through the coordinator even while no
		// workers are polling yet: the store prefill answers their
		// journaled-complete shards immediately, and only the missing
		// shards wait for the fleet. The in-process fallback would instead
		// re-run the whole sweep.
		resumeSet := make(map[string]bool)
		for _, e := range coord.Recovered() {
			resumeSet[e.SpecHash] = true
		}
		runFunc = func(ctx context.Context, sc scenario.Scenario, spec scenario.Spec, opts scenario.RunOptions) (scenario.Result, error) {
			if (spec.ExpandedRuns() > 1 && coord.LiveWorkers() >= *minWorkers) || resumeSet[spec.CanonicalHash()] {
				return coord.Run(ctx, sc, spec, opts)
			}
			return scenario.RunResolved(ctx, sc, spec, opts)
		}
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		Store:          st,
		JobRetention:   *retain,
		JobParallelism: (runtime.GOMAXPROCS(0) + w - 1) / w,
		Telemetry:      reg,
		Log:            log,
		Run:            runFunc,
	})
	// Replay journaled half-finished sweeps: each recovered entry is
	// re-admitted as a fresh job that routes through the coordinator,
	// where the store prefill answers the already-published shards and
	// only the missing ones wait for the fleet.
	if *resume && coord != nil {
		for _, e := range coord.Recovered() {
			jst, rerr := svc.Resume(e.Spec)
			if rerr != nil {
				log.Warn("journaled job not re-admitted",
					"spec_hash", e.SpecHash, "scenario", e.Scenario, "error", rerr.Error())
				continue
			}
			log.Info("journaled job re-admitted",
				"job", jst.ID, "spec_hash", e.SpecHash, "scenario", e.Scenario,
				"shards", len(e.Shards), "journaled_done", e.DoneCount())
		}
	}
	handler := svc.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Handler: handler}

	// The discovery lines scripted callers parse; keep the formats
	// stable (scripts/cluster-e2e.sh reads the dispatch one).
	fmt.Printf("midas-serve listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var dsrv *http.Server
	if coord != nil {
		dsrv = &http.Server{Handler: coord.Handler()}
		fmt.Printf("midas-serve dispatch listening on http://%s\n", dln.Addr())
		go func() { serveErr <- dsrv.Serve(dln) }()
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Drain the job pool FIRST, with HTTP still up: the service
	// rejects new submissions the moment Shutdown begins (503, and
	// /healthz reports "draining"), while clients keep polling and can
	// collect the results of the jobs that are finishing — computing a
	// result during a drain and then refusing to serve it would waste
	// the whole point of draining. Only once the jobs are settled does
	// the listener close, with a short grace for in-flight requests.
	fmt.Println("midas-serve draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "midas-serve: drain expired, outstanding jobs cancelled:", err)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), httpExitGrace)
	defer httpCancel()
	if err := srv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// The dispatch listener outlives the job drain on purpose: draining
	// jobs may be distributed, and killing the lease protocol under
	// them would only force every shard through the requeue machinery.
	if dsrv != nil {
		if err := dsrv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	fmt.Println("midas-serve stopped")
	return nil
}

// httpExitGrace bounds how long the listener stays open after the job
// drain for final status/result fetches; handlers are all sub-second,
// so this is generous.
const httpExitGrace = 5 * time.Second

// openBackend opens root as the store backend flavor -store-shared
// asks for: the plain local-directory backend, or the shared-mount
// variant whose temp naming and manifest handling tolerate concurrent
// writer processes (other coordinators, direct-publishing workers).
func openBackend(root string) (store.Backend, error) {
	if *storeShared {
		return store.OpenSharedDir(root, nil)
	}
	return store.OpenDir(root, nil)
}
