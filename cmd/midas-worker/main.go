// Command midas-worker is the execution half of distributed sweep
// serving: it polls a midas-serve coordinator (its -dispatch-listen
// address) for shard leases, runs each shard through the same engine
// call the in-process pool makes, and publishes the results. Because
// every shard result is fully determined by its spec, workers are
// stateless and disposable — kill -9 one mid-shard and its leases
// expire back into the queue for someone else, with the merged result
// unchanged byte for byte (scripts/cluster-e2e.sh proves exactly
// that).
//
//	midas-worker -coordinator http://host:port [-id NAME]
//	             [-parallelism N] [-max-batch N] [-max-shards N]
//	             [-poll DUR] [-log text|json|off]
//
// SIGINT/SIGTERM exit gracefully: the shard in flight finishes and is
// published (completion is idempotent), then the loop returns. A
// coordinator restart is survived by polling until the new incarnation
// answers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/dispatch"
)

var (
	coordinator = flag.String("coordinator", "", "coordinator dispatch URL, e.g. http://127.0.0.1:9091 (required)")
	id          = flag.String("id", "", "worker name in leases and metrics (default host-pid)")
	parallelism = flag.Int("parallelism", 0, "inner parallelism for each shard (0 = GOMAXPROCS); never affects results")
	maxBatch    = flag.Int("max-batch", 1, "shards to request per poll (coordinator may cap)")
	maxShards   = flag.Int("max-shards", 0, "exit after completing N shards (0 = run until signalled)")
	poll        = flag.Duration("poll", 200*time.Millisecond, "idle re-poll interval when no work is available")
	logFmt      = flag.String("log", "text", "structured log handler on stderr: text, json or off")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "midas-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	var log *slog.Logger
	switch *logFmt {
	case "text":
		log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		log = slog.New(slog.DiscardHandler)
	default:
		return fmt.Errorf("unknown -log format %q (want text, json or off)", *logFmt)
	}
	if *coordinator == "" {
		return fmt.Errorf("-coordinator is required")
	}
	wid := *id
	if wid == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		wid = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	par := *parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The discovery line scripted callers parse; keep the format stable.
	fmt.Printf("midas-worker %s polling %s\n", wid, *coordinator)
	err := dispatch.RunWorker(ctx, dispatch.WorkerConfig{
		Coordinator: *coordinator,
		ID:          wid,
		Parallelism: par,
		MaxBatch:    *maxBatch,
		MaxShards:   *maxShards,
		Poll:        *poll,
		Log:         log,
	})
	if err != nil {
		return err
	}
	fmt.Printf("midas-worker %s stopped\n", wid)
	return nil
}
