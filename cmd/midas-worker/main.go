// Command midas-worker is the execution half of distributed sweep
// serving: it polls a midas-serve coordinator (its -dispatch-listen
// address) for shard leases, runs each shard through the same engine
// call the in-process pool makes, and publishes the results. Because
// every shard result is fully determined by its spec, workers are
// stateless and disposable — kill -9 one mid-shard and its leases
// expire back into the queue for someone else, with the merged result
// unchanged byte for byte (scripts/cluster-e2e.sh proves exactly
// that).
//
//	midas-worker -coordinator http://host:port [-id NAME]
//	             [-parallelism N] [-max-batch N] [-max-shards N]
//	             [-poll DUR] [-store-dir DIR] [-store-shared]
//	             [-log text|json|off]
//
// With -store-dir the worker is a first-class store citizen: each
// completed shard's result envelope is written directly into the
// durable store under the shard spec's canonical hash, and the
// completion POST shrinks to a hash-plus-digest acknowledgement the
// coordinator verifies against its own view of the store — the shard
// payload never transits the dispatch HTTP body. That only helps when
// coordinator and worker actually share the store (same directory, or
// a shared mount with -store-shared on both sides); a worker whose
// store the coordinator cannot see just gets asked to resend inline,
// costing one extra round trip per shard. Without -store-dir the
// worker posts results inline exactly as before.
//
// MIDAS_WORKER_HOLD_AFTER_PUBLISH, when set to a Go duration, makes
// the worker pause that long between the store publish and the
// completion POST, printing "midas-worker <id> holding after publish"
// first — the acknowledgement window scripts/cluster-e2e.sh widens to
// prove a kill -9 inside it loses nothing (the coordinator recovers
// the published result from the store at lease expiry).
//
// SIGINT/SIGTERM exit gracefully: the shard in flight finishes and is
// published (completion is idempotent), then the loop returns. A
// coordinator restart is survived by polling until the new incarnation
// answers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/dispatch"
	"repro/internal/store"
)

var (
	coordinator = flag.String("coordinator", "", "coordinator dispatch URL, e.g. http://127.0.0.1:9091 (required)")
	id          = flag.String("id", "", "worker name in leases and metrics (default host-pid)")
	parallelism = flag.Int("parallelism", 0, "inner parallelism for each shard (0 = GOMAXPROCS); never affects results")
	maxBatch    = flag.Int("max-batch", 1, "shards to request per poll (coordinator may cap)")
	maxShards   = flag.Int("max-shards", 0, "exit after completing N shards (0 = run until signalled)")
	poll        = flag.Duration("poll", 200*time.Millisecond, "idle re-poll interval when no work is available")
	storeDir    = flag.String("store-dir", "",
		"durable result store directory shared with the coordinator: shard results are published here directly and acknowledged by hash (empty = post results inline)")
	storeShared = flag.Bool("store-shared", false,
		"treat -store-dir as a shared filesystem written by multiple processes (must match the coordinator's flag)")
	logFmt = flag.String("log", "text", "structured log handler on stderr: text, json or off")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "midas-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	var log *slog.Logger
	switch *logFmt {
	case "text":
		log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		log = slog.New(slog.DiscardHandler)
	default:
		return fmt.Errorf("unknown -log format %q (want text, json or off)", *logFmt)
	}
	if *coordinator == "" {
		return fmt.Errorf("-coordinator is required")
	}
	wid := *id
	if wid == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		wid = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	par := *parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	var st *store.Store
	if *storeDir != "" {
		var be store.Backend
		var berr error
		if *storeShared {
			be, berr = store.OpenSharedDir(*storeDir, nil)
		} else {
			be, berr = store.OpenDir(*storeDir, nil)
		}
		if berr != nil {
			return berr
		}
		st, berr = store.Open(store.Config{Backend: be, Log: log})
		if berr != nil {
			return berr
		}
		defer st.Close()
		stats := st.Stats()
		fmt.Printf("midas-worker %s store: %d entries warm from %s\n",
			wid, stats.Entries, *storeDir)
	} else if *storeShared {
		return fmt.Errorf("-store-shared needs -store-dir")
	}

	// The acknowledgement-window hook: pause between the store publish
	// and the completion POST so crash tests can kill -9 a worker whose
	// result is already durable but not yet acknowledged.
	var hold func()
	if v := os.Getenv("MIDAS_WORKER_HOLD_AFTER_PUBLISH"); v != "" {
		d, derr := time.ParseDuration(v)
		if derr != nil {
			return fmt.Errorf("MIDAS_WORKER_HOLD_AFTER_PUBLISH: %w", derr)
		}
		hold = func() {
			// The discovery line scripts/cluster-e2e.sh waits for before
			// delivering the kill; keep the format stable.
			fmt.Printf("midas-worker %s holding after publish\n", wid)
			time.Sleep(d)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The discovery line scripted callers parse; keep the format stable.
	fmt.Printf("midas-worker %s polling %s\n", wid, *coordinator)
	err := dispatch.RunWorker(ctx, dispatch.WorkerConfig{
		Coordinator:      *coordinator,
		ID:               wid,
		Parallelism:      par,
		MaxBatch:         *maxBatch,
		MaxShards:        *maxShards,
		Poll:             *poll,
		Store:            st,
		HoldAfterPublish: hold,
		Log:              log,
	})
	if err != nil {
		return err
	}
	fmt.Printf("midas-worker %s stopped\n", wid)
	return nil
}
