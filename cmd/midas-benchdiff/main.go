// Command midas-benchdiff compares two midas-bench -kernels snapshots
// (the BENCH_*.json format) and fails when any kernel regressed beyond
// a threshold — the gate the nightly workflow runs against the
// committed baseline. Timings never reproduce bitwise, so the
// comparison is column-wise per kernel, exactly as the Makefile's
// bench-snapshot guidance prescribes:
//
//	midas-benchdiff -base BENCH_PR2.json -new /tmp/nightly.json -max-regress 25
//
// The default gate metric is the kernel's after/before ns/op *ratio*:
// every snapshot re-measures the frozen pre-workspace implementation
// ("before") and the live kernels ("after") in the same run on the
// same machine, so the ratio is a host-speed-independent measure of
// how much faster the live code is than the frozen reference. That
// makes the committed baseline comparable across hardware — the
// nightly runner need not resemble the machine that wrote
// BENCH_PR2.json. A kernel regresses when its fresh ratio exceeds the
// baseline ratio by more than -max-regress percent. -metric ns
// switches to absolute "after" ns/op comparison for same-machine use
// (checking a working tree against a snapshot you just wrote).
//
// A kernel present in the baseline but missing from the new snapshot
// is an error (a silently dropped benchmark would hide a regression
// forever); new kernels absent from the baseline are reported but do
// not fail. Alloc counts are printed alongside for context; only the
// gate metric fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

var (
	basePath   = flag.String("base", "BENCH_PR2.json", "committed baseline snapshot")
	newPath    = flag.String("new", "", "freshly measured snapshot to check")
	maxRegress = flag.Float64("max-regress", 25, "max allowed regression in percent")
	metric     = flag.String("metric", "ratio",
		"gate metric: \"ratio\" (after/before ns-op ratio, host-speed independent) or \"ns\" (absolute after ns/op, same-machine only)")
)

// measurement mirrors one column of the snapshot's kernel entries.
type measurement struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	BytesOp  int64   `json:"bytes_op"`
}

// kernel is one before/after pair.
type kernel struct {
	Name   string      `json:"name"`
	Before measurement `json:"before"`
	After  measurement `json:"after"`
}

// ratio is the host-normalized cost of the live kernel relative to the
// frozen reference measured in the same run (lower is better; the
// snapshot's "speedup" field is its reciprocal).
func (k kernel) ratio() float64 { return k.After.NsOp / k.Before.NsOp }

// snapshot is the subset of the midas-bench -kernels format the diff
// needs; unknown fields (figures, host metadata) are ignored.
type snapshot struct {
	Schema  string   `json:"schema"`
	Kernels []kernel `json:"kernels"`
}

func load(path string) (snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return snapshot{}, err
	}
	var s snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Kernels) == 0 {
		return snapshot{}, fmt.Errorf("%s: no kernels (schema %q) — not a midas-bench -kernels snapshot?", path, s.Schema)
	}
	for _, k := range s.Kernels {
		if k.Before.NsOp <= 0 || k.After.NsOp <= 0 {
			return snapshot{}, fmt.Errorf("%s: kernel %s has non-positive ns/op", path, k.Name)
		}
	}
	return s, nil
}

func main() {
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "midas-benchdiff: -new is required")
		os.Exit(2)
	}
	if *metric != "ratio" && *metric != "ns" {
		fmt.Fprintf(os.Stderr, "midas-benchdiff: unknown -metric %q (want ratio or ns)\n", *metric)
		os.Exit(2)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "midas-benchdiff:", err)
		os.Exit(1)
	}
}

// gateValue extracts the compared quantity from one kernel entry.
func gateValue(k kernel) float64 {
	if *metric == "ns" {
		return k.After.NsOp
	}
	return k.ratio()
}

func gateLabel() string {
	if *metric == "ns" {
		return "after ns/op"
	}
	return "after/before ratio"
}

func run() error {
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	fresh, err := load(*newPath)
	if err != nil {
		return err
	}
	freshByName := make(map[string]kernel, len(fresh.Kernels))
	for _, k := range fresh.Kernels {
		freshByName[k.Name] = k
	}
	baseNames := make(map[string]bool, len(base.Kernels))

	fmt.Printf("gate metric: %s (max regression +%.0f%%)\n\n", gateLabel(), *maxRegress)
	fmt.Printf("%-22s %12s %12s %9s  %s\n", "kernel", "base", "new", "delta", "allocs (base→new)")
	var failures []string
	for _, b := range base.Kernels {
		baseNames[b.Name] = true
		n, ok := freshByName[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in %s but missing from %s", b.Name, *basePath, *newPath))
			continue
		}
		bv, nv := gateValue(b), gateValue(n)
		deltaPct := (nv - bv) / bv * 100
		marker := ""
		if deltaPct > *maxRegress {
			marker = "  REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %s %.3f → %.3f (%+.1f%%, max +%.0f%%)",
				b.Name, gateLabel(), bv, nv, deltaPct, *maxRegress))
		}
		fmt.Printf("%-22s %12.3f %12.3f %+8.1f%%  %d→%d%s\n",
			b.Name, bv, nv, deltaPct, b.After.AllocsOp, n.After.AllocsOp, marker)
	}
	for _, k := range fresh.Kernels {
		if !baseNames[k.Name] {
			fmt.Printf("%-22s %12s %12.3f %9s  (new kernel, not in baseline)\n", k.Name, "-", gateValue(k), "-")
		}
	}

	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d kernel(s) regressed beyond +%.0f%% against %s", len(failures), *maxRegress, *basePath)
	}
	fmt.Printf("\nOK: %d kernels within +%.0f%% of %s\n", len(base.Kernels), *maxRegress, *basePath)
	return nil
}
