package main

import (
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 17, 30, 0, 0, time.UTC)
	cases := []struct {
		name string
		h    string
		want time.Duration
	}{
		{"absent", "", 0},
		{"delta-seconds", "7", 7 * time.Second},
		{"zero-delta", "0", 0},
		{"negative-delta", "-3", 0},
		{"http-date-future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		// RFC 9110 also grandfathers the RFC 850 and asctime layouts.
		{"rfc850-date", now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second},
		{"asctime-date", now.Add(30 * time.Second).Format(time.ANSIC), 30 * time.Second},
		{"http-date-past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"garbage", "soon", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.h, now); got != tc.want {
				t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.h, got, tc.want)
			}
		})
	}
}
