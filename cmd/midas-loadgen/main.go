// Command midas-loadgen drives a running midas-serve with a
// configurable mix of cached, uncached and coalesced submissions and
// reports end-to-end latency quantiles plus the error rate as JSON —
// with optional SLO gates that make the process exit nonzero when the
// measured service level misses them, so a CI job can fail on a
// latency regression without any external tooling.
//
//	midas-loadgen -url http://host:port [-duration 5s] [-concurrency 8]
//	              [-rate R] [-mix cached=8,uncached=1,coalesced=1]
//	              [-scenario fig12-spatial-reuse] [-topos 2] [-seed 10000]
//	              [-retries N] [-retry-base D]
//	              [-slo-p50 D] [-slo-p90 D] [-slo-p99 D] [-slo-error-rate F]
//	              [-out FILE]
//
// Two driving disciplines:
//
//   - closed loop (default): -concurrency workers each submit, wait for
//     the job to reach a terminal state, and immediately submit again —
//     throughput adapts to the server.
//   - open loop (-rate R > 0): submissions start at a fixed R per
//     second regardless of completions, the discipline that exposes
//     queueing collapse.
//
// Request classes (weights set by -mix):
//
//   - cached: one fixed spec, warmed before measurement — every
//     submission should be answered from the result cache.
//   - uncached: a unique seed per submission — every one is a fresh
//     engine run.
//   - coalesced: submissions share a seed in groups of -coalesce-fanout,
//     so concurrent group members attach to one in-flight run.
//
// The mix is what was *requested*; the report's per-class "outcomes"
// tally what the server actually did (a coalesced-class submission
// arriving after its group leader finished is a cache hit), so drift
// is visible rather than silent.
//
// Latency is end to end: POST /v1/jobs until the job is terminal
// (cache hits are terminal in the submit response; queued jobs are
// polled). Errors are transport failures, non-2xx responses, jobs
// ending failed/cancelled, and completion-poll timeouts.
//
// Transient failures — transport errors (connection refused/reset
// during a server restart window) and 503 responses — are retried up
// to -retries times per exchange with exponential backoff from
// -retry-base, ±50% jitter, honouring a 503's Retry-After when it asks
// for longer. Retries are tallied separately from errors in the
// report (total and per class), so the SLO error gate counts only
// requests that stayed failed after the retry budget, while recovered
// blips remain visible instead of disappearing into the success count.
//
// Exit status: 0 = ran and all SLOs held, 1 = an SLO was violated (or
// nothing completed), 2 = usage error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

var (
	baseURL     = flag.String("url", "", "base URL of the midas-serve instance (required)")
	duration    = flag.Duration("duration", 5*time.Second, "measurement window")
	concurrency = flag.Int("concurrency", 8, "closed-loop workers (and the in-flight bound)")
	rate        = flag.Float64("rate", 0, "open-loop submissions per second (0 = closed loop)")
	mixFlag     = flag.String("mix", "cached=8,uncached=1,coalesced=1",
		"request-class weights, comma-separated name=weight")
	scenarioName = flag.String("scenario", "fig12-spatial-reuse", "scenario every submission runs")
	topos        = flag.Int("topos", 2, "topologies per submitted spec (keep small: uncached specs run the engine)")
	seedBase     = flag.Int64("seed", 10000, "base seed; classes derive their seeds from it")
	fanout       = flag.Int("coalesce-fanout", 4, "coalesced-class submissions sharing one seed group")
	jobTimeout   = flag.Duration("timeout", 60*time.Second, "per-job completion timeout")
	retries      = flag.Int("retries", 3, "transient-failure retries per HTTP exchange (transport errors and 503s; 0 disables)")
	retryBase    = flag.Duration("retry-base", 100*time.Millisecond, "first retry backoff; doubles per attempt, ±50% jitter")
	retryMax     = flag.Duration("retry-max", 5*time.Second, "retry backoff ceiling (caps the doubling and any server Retry-After)")
	outPath      = flag.String("out", "", "write the JSON report to this file instead of stdout")

	sloP50    = flag.Duration("slo-p50", 0, "fail if overall p50 latency exceeds this (0 = no gate)")
	sloP90    = flag.Duration("slo-p90", 0, "fail if overall p90 latency exceeds this (0 = no gate)")
	sloP99    = flag.Duration("slo-p99", 0, "fail if overall p99 latency exceeds this (0 = no gate)")
	sloErrors = flag.Float64("slo-error-rate", -1, "fail if the error rate exceeds this fraction (negative = no gate)")
)

// classes in mix-flag order.
const (
	classCached    = "cached"
	classUncached  = "uncached"
	classCoalesced = "coalesced"
)

// sample is one completed (or failed) submission.
type sample struct {
	class   string
	outcome string // cached|coalesced|queued|error
	latency time.Duration
	err     bool
	retries int // transient-failure retries spent across submit + polls
}

// jobStatus is the slice of the service's status payload the driver
// needs.
type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
}

// latencyStats is the quantile block of the report, in seconds.
type latencyStats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// classReport is one request class's section of the report.
type classReport struct {
	Requested int `json:"requested"`
	Errors    int `json:"errors"`
	// Retries counts transient failures that were retried and may have
	// recovered — tallied apart from Errors so the SLO gates never see
	// a blip the retry budget absorbed.
	Retries  int            `json:"retries"`
	Outcomes map[string]int `json:"outcomes"`
	Latency  latencyStats   `json:"latency_seconds"`
}

// report is the JSON document the run emits.
type report struct {
	URL             string                 `json:"url"`
	Scenario        string                 `json:"scenario"`
	Mode            string                 `json:"mode"` // closed|open
	DurationSeconds float64                `json:"duration_seconds"`
	Total           int                    `json:"total"`
	Errors          int                    `json:"errors"`
	Retries         int                    `json:"retries"`
	ErrorRate       float64                `json:"error_rate"`
	ThroughputRPS   float64                `json:"throughput_rps"`
	Latency         latencyStats           `json:"latency_seconds"`
	Classes         map[string]classReport `json:"classes"`
	SLOViolations   []string               `json:"slo_violations"`
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "midas-loadgen:", err)
		os.Exit(2)
	}
}

func run() error {
	if *baseURL == "" {
		return fmt.Errorf("-url is required")
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1 (got %d)", *concurrency)
	}
	if *fanout < 1 {
		return fmt.Errorf("-coalesce-fanout must be >= 1 (got %d)", *fanout)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	d := &driver{
		client: &http.Client{Timeout: 30 * time.Second},
		url:    strings.TrimSuffix(*baseURL, "/"),
		mix:    mix,
	}

	// Warm the cache so the cached class measures hits, not one cold
	// run: submit the fixed spec once and wait for it outside the
	// measured window.
	warmCtx, cancel := context.WithTimeout(context.Background(), *jobTimeout)
	defer cancel()
	if s := d.request(warmCtx, classCached); s.err {
		return fmt.Errorf("warmup submission failed (is %s a midas-serve?)", *baseURL)
	}

	ctx, stop := context.WithTimeout(context.Background(), *duration)
	defer stop()
	start := time.Now()
	if *rate > 0 {
		d.openLoop(ctx)
	} else {
		d.closedLoop(ctx)
	}
	elapsed := time.Since(start)

	rep := d.report(elapsed)
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, body, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(body)
	}
	if len(rep.SLOViolations) > 0 {
		for _, v := range rep.SLOViolations {
			fmt.Fprintln(os.Stderr, "midas-loadgen: SLO violation:", v)
		}
		os.Exit(1)
	}
	return nil
}

// driver owns the shared state of one load run.
type driver struct {
	client *http.Client
	url    string
	mix    []weighted

	next atomic.Int64 // global submission counter: class picking
	// Per-class submission counters drive seed derivation, so the
	// coalesced class's fanout groups are consecutive *within the
	// class* — deriving them from the global counter would spread each
	// group across the whole mix cycle and nothing would ever share a
	// seed while in flight.
	uncachedN  atomic.Int64
	coalescedN atomic.Int64

	mu      sync.Mutex
	samples []sample
}

type weighted struct {
	class string
	limit int64 // cumulative weight bound
}

// parseMix parses "cached=8,uncached=1,coalesced=1" into cumulative
// weight ranges. Omitted classes get weight 0.
func parseMix(s string) ([]weighted, error) {
	weights := map[string]int64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-mix entry %q is not name=weight", part)
		}
		switch name {
		case classCached, classUncached, classCoalesced:
		default:
			return nil, fmt.Errorf("-mix class %q unknown (want cached, uncached or coalesced)", name)
		}
		w, err := strconv.ParseInt(val, 10, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-mix weight %q must be a nonnegative integer", val)
		}
		weights[name] = w
	}
	var out []weighted
	var cum int64
	for _, class := range []string{classCached, classUncached, classCoalesced} {
		if w := weights[class]; w > 0 {
			cum += w
			out = append(out, weighted{class: class, limit: cum})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix %q selects no requests", s)
	}
	return out, nil
}

// pick assigns submission n a class by its position in the cumulative
// weight cycle — a deterministic interleaving that honours the mix at
// every window size.
func (d *driver) pick(n int64) string {
	total := d.mix[len(d.mix)-1].limit
	pos := n % total
	for _, w := range d.mix {
		if pos < w.limit {
			return w.class
		}
	}
	return d.mix[0].class // unreachable
}

// closedLoop runs -concurrency workers, each submitting again the
// moment its previous job is terminal. The window deadline only stops
// *starting* requests; an in-flight one completes normally (bounded by
// -timeout), so the window's edge cannot masquerade as server errors.
func (d *driver) closedLoop(ctx context.Context) {
	var wg sync.WaitGroup
	for range *concurrency {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				n := d.next.Add(1)
				d.record(d.request(context.Background(), d.pick(n)))
			}
		}()
	}
	wg.Wait()
}

// openLoop submits at a fixed -rate regardless of completions; each
// submission gets its own goroutine so a slow server cannot throttle
// the arrival process (that pile-up is exactly what the discipline
// measures).
func (d *driver) openLoop(ctx context.Context) {
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
			n := d.next.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.record(d.request(context.Background(), d.pick(n)))
			}()
		}
	}
}

// seedFor derives the spec seed for a class's next submission: cached
// always reuses the base seed, uncached takes a fresh seed per
// submission, coalesced shares one seed per -coalesce-fanout group.
// The ranges are disjoint so classes never alias each other's cache
// entries.
func (d *driver) seedFor(class string) int64 {
	switch class {
	case classUncached:
		return *seedBase + 1_000_000 + d.uncachedN.Add(1)
	case classCoalesced:
		return *seedBase + 2_000_000_000 + d.coalescedN.Add(1)/int64(*fanout)
	default:
		return *seedBase
	}
}

// request submits one spec and follows it to a terminal state,
// returning the end-to-end sample.
func (d *driver) request(ctx context.Context, class string) sample {
	spec := fmt.Sprintf(`{"scenario": %q, "topologies": %d, "seed": %d}`,
		*scenarioName, *topos, d.seedFor(class))
	s := sample{class: class, outcome: "error", err: true}
	start := time.Now()

	// Resubmitting a spec is safe: results are content-addressed, so a
	// duplicate POST lands on the cache or coalesces — which is what
	// makes retrying the submit (not just the polls) correct.
	code, body, tries, ok := d.doTransient(ctx, http.MethodPost, d.url+"/v1/jobs", []byte(spec))
	s.retries += tries
	if !ok || (code != http.StatusOK && code != http.StatusAccepted) {
		return s
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return s
	}

	deadline := start.Add(*jobTimeout)
	for st.State != "done" {
		switch st.State {
		case "failed", "cancelled":
			return s
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return s
		}
		time.Sleep(5 * time.Millisecond)
		tries, ok := d.poll(ctx, st.ID, &st)
		s.retries += tries
		if !ok {
			return s
		}
	}
	s.latency = time.Since(start)
	s.err = false
	switch {
	case st.Cached:
		s.outcome = "cached"
	case st.Coalesced:
		s.outcome = "coalesced"
	default:
		s.outcome = "queued"
	}
	return s
}

// poll refreshes st from GET /v1/jobs/{id}, returning the retries it
// spent.
func (d *driver) poll(ctx context.Context, id string, st *jobStatus) (int, bool) {
	code, body, tries, ok := d.doTransient(ctx, http.MethodGet, d.url+"/v1/jobs/"+id, nil)
	if !ok || code != http.StatusOK {
		return tries, false
	}
	return tries, json.Unmarshal(body, st) == nil
}

// doTransient performs one HTTP exchange, retrying transient failures:
// transport errors and 503 responses, up to -retries times. The
// backoff doubles from -retry-base with ±50% jitter (decorrelating the
// retry herd a restarting server would otherwise face all at once); a
// 503 whose Retry-After asks for longer gets it. Both the doubling and
// the server's ask are capped at -retry-max, so a long retry budget
// (or a confused server clock) cannot park a worker for minutes.
// Returns the last status code and body, the retries spent, and
// ok=false only when the transport kept failing through the final
// attempt.
func (d *driver) doTransient(ctx context.Context, method, url string, reqBody []byte) (code int, body []byte, tries int, ok bool) {
	backoff := *retryBase
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	ceiling := *retryMax
	if ceiling < backoff {
		ceiling = backoff
	}
	for attempt := 0; ; attempt++ {
		var rdr io.Reader
		if reqBody != nil {
			rdr = bytes.NewReader(reqBody)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rdr)
		if err != nil {
			return 0, nil, attempt, false
		}
		var serverWait time.Duration
		resp, err := d.client.Do(req)
		if err == nil {
			body, _ = io.ReadAll(resp.Body)
			code = resp.StatusCode
			serverWait = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
			resp.Body.Close()
			if code != http.StatusServiceUnavailable {
				return code, body, attempt, true
			}
			// The v1 error envelope mirrors the hint in-band
			// (retry_after_seconds); prefer it over the header so the hint
			// survives header-stripping proxies. Plain-text bodies from a
			// pre-envelope server parse with no hint and fall back to the
			// header value above.
			if e := api.Parse(body); e.RetryAfterSeconds > 0 {
				serverWait = time.Duration(e.RetryAfterSeconds) * time.Second
			}
		}
		if attempt >= *retries || ctx.Err() != nil {
			if err != nil {
				return 0, nil, attempt, false
			}
			return code, body, attempt, true // still 503 after the budget
		}
		sleep := backoff/2 + rand.N(backoff) // uniform in [0.5, 1.5)·backoff
		if serverWait > sleep {
			sleep = serverWait
		}
		if sleep > ceiling {
			sleep = ceiling
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
		}
		if backoff *= 2; backoff > ceiling {
			backoff = ceiling
		}
	}
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delta-seconds ("120") or HTTP-date ("Fri, 08 Aug 2026 17:30:00 GMT",
// any of the three date layouts http.ParseTime knows). Returns 0 for
// absent, malformed, non-positive or already-past values — "retry at
// your own pace".
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

func (d *driver) record(s sample) {
	d.mu.Lock()
	d.samples = append(d.samples, s)
	d.mu.Unlock()
}

// stats computes nearest-rank quantiles over a latency set.
func stats(lat []time.Duration) latencyStats {
	st := latencyStats{Count: len(lat)}
	if len(lat) == 0 {
		return st
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, l := range lat {
		sum += l
	}
	q := func(p float64) float64 {
		i := int(p*float64(len(lat))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i].Seconds()
	}
	st.Mean = (sum / time.Duration(len(lat))).Seconds()
	st.P50, st.P90, st.P99 = q(0.50), q(0.90), q(0.99)
	st.Max = lat[len(lat)-1].Seconds()
	return st
}

// report folds the samples into the JSON document and evaluates the
// SLO gates.
func (d *driver) report(elapsed time.Duration) report {
	mode := "closed"
	if *rate > 0 {
		mode = "open"
	}
	rep := report{
		URL:             d.url,
		Scenario:        *scenarioName,
		Mode:            mode,
		DurationSeconds: elapsed.Seconds(),
		Classes:         map[string]classReport{},
		SLOViolations:   []string{},
	}
	var all []time.Duration
	perClass := map[string][]time.Duration{}
	for _, s := range d.samples {
		rep.Total++
		cr := rep.Classes[s.class]
		if cr.Outcomes == nil {
			cr.Outcomes = map[string]int{}
		}
		cr.Requested++
		cr.Outcomes[s.outcome]++
		rep.Retries += s.retries
		cr.Retries += s.retries
		if s.err {
			rep.Errors++
			cr.Errors++
		} else {
			all = append(all, s.latency)
			perClass[s.class] = append(perClass[s.class], s.latency)
		}
		rep.Classes[s.class] = cr
	}
	if rep.Total > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Total)
		rep.ThroughputRPS = float64(rep.Total) / elapsed.Seconds()
	}
	rep.Latency = stats(all)
	for class, lat := range perClass {
		cr := rep.Classes[class]
		cr.Latency = stats(lat)
		rep.Classes[class] = cr
	}

	if rep.Total == 0 {
		rep.SLOViolations = append(rep.SLOViolations, "no submissions completed inside the window")
	}
	gate := func(name string, slo time.Duration, got float64) {
		if slo > 0 && got > slo.Seconds() {
			rep.SLOViolations = append(rep.SLOViolations,
				fmt.Sprintf("%s %.4fs exceeds SLO %s", name, got, slo))
		}
	}
	gate("p50", *sloP50, rep.Latency.P50)
	gate("p90", *sloP90, rep.Latency.P90)
	gate("p99", *sloP99, rep.Latency.P99)
	if *sloErrors >= 0 && rep.ErrorRate > *sloErrors {
		rep.SLOViolations = append(rep.SLOViolations,
			fmt.Sprintf("error rate %.4f exceeds SLO %.4f", rep.ErrorRate, *sloErrors))
	}
	return rep
}
