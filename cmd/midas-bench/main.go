// Command midas-bench regenerates every table and figure of the MIDAS
// paper's evaluation (§5) as text series: CDFs as "x<TAB>F(x)" rows,
// scalar results as labelled summaries. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//
// Usage:
//
//	midas-bench [-figure all|3|7|8|9|10|11|12|13|14|15|16|ht|decomp|ablations]
//	            [-topos N] [-seed S] [-simtime D] [-points N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

var (
	figure  = flag.String("figure", "all", "which figure to regenerate")
	topos   = flag.Int("topos", 60, "topologies per experiment")
	seed    = flag.Int64("seed", 2014, "root random seed")
	simTime = flag.Duration("simtime", 300*time.Millisecond, "simulated airtime per end-to-end run")
	points  = flag.Int("points", 20, "rows per printed CDF")
)

func main() {
	flag.Parse()
	want := strings.Split(*figure, ",")
	ran := 0
	for _, e := range experiments() {
		if !selected(want, e.name) {
			continue
		}
		fmt.Printf("==== %s ====\n", e.name)
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}
}

func selected(want []string, name string) bool {
	for _, w := range want {
		if w == "all" || w == name || strings.HasPrefix(name, "fig"+w+"-") ||
			(w == "ht" && strings.HasPrefix(name, "ht-")) ||
			(w == "decomp" && strings.HasPrefix(name, "decomp-")) {
			return true
		}
	}
	return false
}

type experiment struct {
	name string
	fn   func() error
}

// experiments lists the runners in paper order.
func experiments() []experiment {
	return []experiment{
		{"fig3-naive-scaling-drop", fig3},
		{"fig7-link-snr", fig7},
		{"fig8-office-a", func() error { return fig89(sim.OfficeA) }},
		{"fig9-office-b", func() error { return fig89(sim.OfficeB) }},
		{"fig10-smart-precoding", fig10},
		{"fig11-optimal-gap", fig11},
		{"fig12-spatial-reuse", fig12},
		{"fig13-deadzones", fig13},
		{"ht-hidden-terminals", hiddenTerminals},
		{"fig14-packet-tagging", fig14},
		{"fig15-end-to-end", fig15},
		{"fig16-large-scale", fig16},
		{"decomp-gain-breakdown", decomp},
		{"ablations", ablations},
		{"ext-beamforming", extBeamforming},
		{"ext-placement", extPlacement},
	}
}

func printCDF(label string, s *stats.Sample) {
	med, _ := s.Median()
	fmt.Printf("-- %s (n=%d, median %.2f)\n", label, s.N(), med)
	fmt.Print(s.ECDF().Table(*points))
}

func fig3() error {
	cas, das, err := sim.Fig3NaiveScalingDrop(*topos, *seed)
	if err != nil {
		return err
	}
	printCDF("CAS capacity drop (bit/s/Hz)", cas)
	printCDF("DAS capacity drop (bit/s/Hz)", das)
	return nil
}

func fig7() error {
	cas, das := sim.Fig7LinkSNR(*topos, *seed)
	printCDF("CAS link SNR (dB)", cas)
	printCDF("DAS link SNR (dB)", das)
	mc, md := cas.MustMedian(), das.MustMedian()
	fmt.Printf("median DAS link gain: %.1f dB (paper: ≈5 dB)\n", md-mc)
	return nil
}

func fig89(o sim.Office) error {
	for _, nAnt := range []int{2, 4} {
		cas, midas, err := sim.FigCapacityCDF(o, nAnt, *topos, *seed)
		if err != nil {
			return err
		}
		printCDF(fmt.Sprintf("%v %dx%d CAS capacity (bit/s/Hz)", o, nAnt, nAnt), cas)
		printCDF(fmt.Sprintf("%v %dx%d MIDAS capacity (bit/s/Hz)", o, nAnt, nAnt), midas)
		_, _, gain := sim.SummarizeGain(cas, midas)
		fmt.Printf("%v %dx%d median gain: %.0f%%\n", o, nAnt, nAnt, gain*100)
	}
	return nil
}

func fig10() error {
	c, err := sim.Fig10SmartPrecoding(*topos, *seed)
	if err != nil {
		return err
	}
	printCDF("CAS w/o MIDAS precoding", c.CASNaive)
	printCDF("CAS w/ MIDAS precoding", c.CASBalanced)
	printCDF("DAS w/o MIDAS precoding", c.DASNaive)
	printCDF("DAS w/ MIDAS precoding", c.DASBalanced)
	cg, _ := stats.MedianGain(c.CASBalanced, c.CASNaive)
	dg, _ := stats.MedianGain(c.DASBalanced, c.DASNaive)
	fmt.Printf("median precoding gain: CAS %.0f%%, DAS %.0f%% (paper: 12%%, 30%%)\n", cg*100, dg*100)
	return nil
}

func fig11() error {
	for _, testbed := range []bool{false, true} {
		label := "simulation"
		if testbed {
			label = "testbed (stale optimum)"
		}
		pts, err := sim.Fig11OptimalGap(20, *seed, testbed)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s: topology\tMIDAS\toptimal\n", label)
		var sm, so float64
		for _, p := range pts {
			fmt.Printf("%d\t%.2f\t%.2f\n", p.Topology, p.MIDAS, p.Optimal)
			sm += p.MIDAS
			so += p.Optimal
		}
		fmt.Printf("aggregate MIDAS/optimal = %.3f\n", sm/so)
	}
	return nil
}

func fig12() error {
	res := sim.Fig12SpatialReuse(*topos/2, *seed)
	ratios := stats.NewSample()
	for _, r := range res {
		ratios.Add(r.Ratio)
	}
	printCDF("simultaneous-stream ratio MIDAS/CAS", ratios)
	fmt.Printf("median ratio: %.2f (paper: ≈1.5)\n", ratios.MustMedian())
	return nil
}

func fig13() error {
	res := sim.Fig13Deadzones(10, *seed)
	fmt.Printf("spots measured: %d\nCAS deadspots: %d\nDAS deadspots: %d\nreduction: %.0f%% (paper: 91%%)\n",
		res.Spots, res.CASDeadspots, res.DASDeadspots,
		100*(1-float64(res.DASDeadspots)/float64(res.CASDeadspots)))
	fmt.Println("-- example map (CAS left, DAS right; '#' = deadspot)")
	printMaps(res)
	return nil
}

// printMaps renders the Fig 13 deadzone maps side by side, downsampled.
func printMaps(res sim.DeadzoneResult) {
	if res.MapCols == 0 {
		return
	}
	rows := len(res.CASMap) / res.MapCols
	const step = 3
	for r := 0; r < rows; r += step {
		var left, right strings.Builder
		for c := 0; c < res.MapCols; c += step {
			i := r*res.MapCols + c
			if i >= len(res.CASMap) {
				break
			}
			left.WriteByte(cell(res.CASMap[i]))
			right.WriteByte(cell(res.DASMap[i]))
		}
		fmt.Printf("%s   %s\n", left.String(), right.String())
	}
}

func cell(dead bool) byte {
	if dead {
		return '#'
	}
	return '.'
}

func hiddenTerminals() error {
	res := sim.HiddenTerminals(10, *seed)
	fmt.Printf("spots measured: %d\nCAS hidden-terminal spots: %d\nDAS hidden-terminal spots: %d\nreduction: %.0f%% (paper: 94%%)\n",
		res.Spots, res.CASSpots, res.DASSpots,
		100*(1-float64(res.DASSpots)/float64(res.CASSpots)))
	return nil
}

func fig14() error {
	random, tagged, err := sim.Fig14PacketTagging(*topos, *seed)
	if err != nil {
		return err
	}
	printCDF("random client pair (bit/s/Hz)", random)
	printCDF("tag-driven client pair (bit/s/Hz)", tagged)
	_, _, gain := sim.SummarizeGain(random, tagged)
	fmt.Printf("median tagging gain: %.0f%% (paper: ≈50%%)\n", gain*100)
	return nil
}

func e2eOpts() sim.E2EOpts {
	return sim.E2EOpts{Topologies: *topos, SimTime: *simTime, Seed: *seed}
}

func fig15() error {
	cas, midas := sim.Fig15EndToEnd(e2eOpts())
	printCDF("CAS network capacity (bit/s/Hz)", cas)
	printCDF("MIDAS network capacity (bit/s/Hz)", midas)
	_, _, gain := sim.SummarizeGain(cas, midas)
	fmt.Printf("median end-to-end gain: %.0f%% (paper: ≈200%%)\n", gain*100)
	return nil
}

func fig16() error {
	o := e2eOpts()
	if o.Topologies > 20 {
		o.Topologies = 20 // 8-AP DES is costly; 20 topologies suffice for the CDF shape
	}
	cas, midas, err := sim.Fig16LargeScale(o)
	if err != nil {
		return err
	}
	printCDF("CAS 8-AP capacity (bit/s/Hz)", cas)
	printCDF("MIDAS 8-AP capacity (bit/s/Hz)", midas)
	_, _, gain := sim.SummarizeGain(cas, midas)
	fmt.Printf("median large-scale gain: %.0f%% (paper: >150%%)\n", gain*100)
	return nil
}

func decomp() error {
	o := e2eOpts()
	if o.Topologies > 20 {
		o.Topologies = 20
	}
	res := sim.Decomposition(o)
	fmt.Printf("median capacities (bit/s/Hz):\n")
	fmt.Printf("  CAS baseline:        %.2f\n", res.CAS.MustMedian())
	fmt.Printf("  + smart precoding:   %.2f\n", res.CASPlusPrecoding.MustMedian())
	fmt.Printf("  + DAS deployment:    %.2f\n", res.DASPlusPrecoding.MustMedian())
	fmt.Printf("  + DAS-aware MAC:     %.2f (full MIDAS)\n", res.FullMIDAS.MustMedian())
	return nil
}

func ablations() error {
	o := e2eOpts()
	if o.Topologies > 12 {
		o.Topologies = 12
	}
	fmt.Println("-- tag width (antennas tagged per packet)")
	for _, w := range []int{1, 2, 3, 4} {
		res := sim.AblationTagWidth([]int{w}, o)
		fmt.Printf("  width %d: median %.2f bit/s/Hz\n", w, res[w].MustMedian())
	}
	fmt.Println("-- opportunistic wait window")
	for _, w := range []time.Duration{0, 34 * time.Microsecond, 68 * time.Microsecond} {
		res := sim.AblationWaitWindow([]time.Duration{w}, o)
		fmt.Printf("  window %v: median %.2f bit/s/Hz\n", w, res[w].MustMedian())
	}
	fmt.Println("-- client-selection scheduler")
	res := sim.AblationScheduler(o)
	for _, name := range []string{"drr", "rr", "random"} {
		fmt.Printf("  %s: median %.2f bit/s/Hz\n", name, res[name].MustMedian())
	}
	fmt.Println("-- CAS antenna correlation (single-AP capacity)")
	corr := sim.AblationCorrelation([]float64{0, 0.3, 0.6, 0.9}, 40, *seed)
	for _, rho := range []float64{0, 0.3, 0.6, 0.9} {
		fmt.Printf("  rho %.1f: median %.2f bit/s/Hz\n", rho, corr[rho].MustMedian())
	}
	return nil
}

// extBeamforming quantifies §7's localized single-user beamforming.
func extBeamforming() error {
	for _, win := range []float64{6, 12, 30} {
		res := sim.BeamformingStudy(*topos, win, *seed)
		fmt.Printf("window %2.0f dB: SNR %.1f→%.1f dB, silenced area %.0f%%→%.0f%%\n",
			win, res.SNRFull.MustMedian(), res.SNRLocal.MustMedian(),
			res.SilencedFull.MustMedian()*100, res.SilencedLocal.MustMedian()*100)
	}
	return nil
}

// extPlacement quantifies the §7 open problem of optimising antenna
// placement.
func extPlacement() error {
	res, err := sim.PlacementStudy(*topos/2, 30, *seed)
	if err != nil {
		return err
	}
	printCDF("random placement coverage objective (dB)", res.RandomCoverage)
	printCDF("optimized placement coverage objective (dB)", res.OptimizedCoverage)
	printCDF("random placement capacity (bit/s/Hz)", res.RandomCapacity)
	printCDF("optimized placement capacity (bit/s/Hz)", res.OptimizedCapacity)
	fmt.Printf("median coverage gain: %.1f dB; capacity ratio %.2f\n",
		res.OptimizedCoverage.MustMedian()-res.RandomCoverage.MustMedian(),
		res.OptimizedCapacity.MustMedian()/res.RandomCapacity.MustMedian())
	return nil
}
