// Command midas-bench regenerates every table and figure of the MIDAS
// paper's evaluation (§5). Experiments are resolved from the
// internal/scenario registry — the same declarative scenarios
// midas-sim -scenario runs — and executed in paper order. Each
// scenario's topology sweep runs on the internal/runner worker pool
// (-parallel), and results flow through a pluggable sink:
// human-readable text CDF tables (default), a JSON snapshot for
// machine-readable perf/result tracking, or flat CSV rows. Results are
// bit-identical at any -parallel value for a given -seed. -topos,
// -seed and -simtime override the scenarios' own defaults only when
// explicitly passed. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//
// Usage:
//
//	midas-bench [-figure all|3|7|8|9|10|11|12|13|14|15|16|ht|decomp|ablations|<scenario-prefix>]
//	            [-topos N] [-seed S] [-simtime D] [-points N] [-replicates N]
//	            [-parallel N] [-format text|json|csv] [-out FILE] [-progress]
//
// -replicates N re-runs every selected experiment over N split seeds
// and reports {mean, stddev, ci95, n} summaries per metric; the
// snapshot meta records the replicate count.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
)

var (
	figure     = flag.String("figure", "all", "which figure to regenerate (comma-separated)")
	topos      = flag.Int("topos", 60, "topologies per experiment")
	seed       = flag.Int64("seed", 2014, "root random seed")
	simTime    = flag.Duration("simtime", 300*time.Millisecond, "simulated airtime per end-to-end run")
	points     = flag.Int("points", 20, "rows per printed CDF (text format)")
	parallel   = flag.Int("parallel", 0, "topology tasks evaluated concurrently (0 = GOMAXPROCS)")
	replicates = flag.Int("replicates", 1,
		"replicate every selected experiment over split seeds and report {mean, stddev, ci95, n} summaries (recorded in the snapshot meta)")
	format   = flag.String("format", "text", "output format: text, json or csv")
	outPath  = flag.String("out", "", "write results to this file instead of stdout")
	progress = flag.Bool("progress", false, "report per-task timing on stderr")
	kernels  = flag.Bool("kernels", false,
		"measure the linear-algebra kernel micro-benchmarks (before/after pairs) plus reduced-scale figure benchmarks and emit a JSON snapshot; this is what `make bench-snapshot` commits as BENCH_PR2.json")
	rounds = flag.Int("rounds", 3, "alternating measurement rounds per -kernels benchmark")
)

// runKernels writes the before/after kernel snapshot (see internal/bench).
func runKernels() {
	snap := bench.KernelSnapshot(*rounds, *topos, *seed)
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *outPath == "" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, k := range snap.Kernels {
		fmt.Fprintf(os.Stderr, "%-18s before %8.0f ns/op %3d allocs  after %8.0f ns/op %3d allocs  %.2fx\n",
			k.Name, k.Before.NsOp, k.Before.AllocsOp, k.After.NsOp, k.After.AllocsOp, k.Speedup)
	}
}

func main() {
	flag.Parse()
	if *topos < 1 {
		fmt.Fprintf(os.Stderr, "-topos must be >= 1 (got %d)\n", *topos)
		os.Exit(2)
	}
	if *rounds < 1 {
		fmt.Fprintf(os.Stderr, "-rounds must be >= 1 (got %d)\n", *rounds)
		os.Exit(2)
	}
	if *replicates < 1 {
		// 0 would merge as "inherit the scenario default" — refuse the
		// inexpressible value instead of silently running unreplicated.
		fmt.Fprintf(os.Stderr, "-replicates must be >= 1 (got %d)\n", *replicates)
		os.Exit(2)
	}
	sim.Parallelism = *parallel
	if *kernels {
		// Kernel measurements are single-threaded on purpose: the
		// snapshot tracks per-core speed, the figure benchmarks inherit
		// -parallel via sim.Parallelism above.
		runKernels()
		return
	}
	if *progress {
		sim.OnProgress = func(label string, p runner.Progress) {
			fmt.Fprintf(os.Stderr, "%s: %d/%d (task %d took %v)\n",
				label, p.Completed, p.Total, p.Index, p.Elapsed.Round(time.Millisecond))
		}
	}

	// Scenario defaults carry the paper's per-experiment scales; shared
	// flags override them only when explicitly passed, so e.g. the
	// reduced default topology count of fig16 survives a plain run. The
	// same explicit-only values feed the snapshot metadata: a flag that
	// was not passed is omitted there rather than recorded as a value
	// the per-scenario defaults may not have used.
	var overrides scenario.Spec
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "topos":
			overrides.Topologies = *topos
		case "seed":
			if *seed == 0 {
				// Spec merging treats 0 as "inherit the scenario
				// default", so an explicit 0 cannot be expressed.
				fmt.Fprintln(os.Stderr, "-seed 0 cannot be used (0 means \"inherit\"); pick a nonzero seed")
				os.Exit(2)
			}
			overrides.Seed = *seed
		case "simtime":
			overrides.SimTime = scenario.Duration(*simTime)
		case "parallel":
			overrides.Parallelism = *parallel
		case "replicates":
			overrides.Replicates = *replicates
		}
	})

	// Resolve the experiment selection before touching the output file,
	// so a typo'd -figure cannot truncate an existing snapshot.
	want := strings.Split(*figure, ",")
	var selectedExps []string
	for _, name := range scenario.Names() {
		if selected(want, name) {
			selectedExps = append(selectedExps, name)
		}
	}
	if len(selectedExps) == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}

	// With -out, results are buffered and the file is written only after
	// every experiment and the sink have succeeded, so no failure mode
	// (bad flags, a mid-run experiment error) can truncate an existing
	// snapshot.
	var buf bytes.Buffer
	var w io.Writer = os.Stdout
	if *outPath != "" {
		w = &buf
	}
	sink, err := runner.NewSink(*format, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if ts, ok := sink.(*runner.TextSink); ok {
		ts.Points = *points
	}

	effParallel := *parallel
	if effParallel <= 0 {
		effParallel = runtime.GOMAXPROCS(0)
	}
	// Seed: every registered scenario defaults to the flag's own default
	// (2014), so the recorded seed is accurate whether or not -seed was
	// passed. Topologies/SimTime are recorded only when explicitly set —
	// at defaults they vary per scenario (fig16 runs 20, fig12 30, …)
	// and a single number here would misdescribe most results.
	// Replicates follows the same explicit-only rule: recorded when the
	// flag was passed (scenarios with replicated defaults, like
	// fig15-replicated, describe themselves in their own results).
	meta := runner.Meta{
		Tool:        "midas-bench",
		Seed:        *seed,
		Topologies:  overrides.Topologies,
		Parallelism: effParallel,
		SimTime:     overridesSimTime(overrides),
		Replicates:  overrides.Replicates,
	}
	if err := sink.Begin(meta); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, name := range selectedExps {
		sc, _ := scenario.Get(name)
		spec, err := scenario.Resolve(sc, overrides)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		// Swept scenarios fan out in the engine's run pool; the engine
		// splits the spec's -parallel budget between that pool and each
		// run's inner sweep itself (carried in the task specs, not the
		// sim.Parallelism global).
		res, err := runner.Timed(name, func(r *runner.Result) error {
			out, err := scenario.Run(context.Background(), sc, spec)
			if err != nil {
				return err
			}
			rr := out.RunnerResult()
			r.Series, r.Metrics, r.Summaries, r.Text = rr.Series, rr.Metrics, rr.Summaries, rr.Text
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if err := sink.Result(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// overridesSimTime renders the explicitly-set -simtime for the meta
// block, or "" when the scenarios' own defaults apply.
func overridesSimTime(o scenario.Spec) string {
	if o.SimTime == 0 {
		return ""
	}
	return time.Duration(o.SimTime).String()
}

// selected reports whether a scenario name matches one of the -figure
// tokens: "all", a figure number ("12" matches "fig12-spatial-reuse"),
// the "ablations" group, or any scenario-name prefix ("ht", "decomp",
// "dense", "client-churn", or an exact name). A figure number or the
// bare stem it shares with its base figure selects only the paper's own
// figure — beyond-paper variants like fig15-replicated run under "all"
// or when their distinguishing suffix is (partially) named
// ("-figure fig15-rep"), never silently alongside the figure they
// extend.
func selected(want []string, name string) bool {
	for _, w := range want {
		if w == "" {
			continue
		}
		if w == "all" || prefixSelects(name, "fig"+w+"-") ||
			(w == "ablations" && strings.HasPrefix(name, "ablation-")) ||
			prefixSelects(name, w) {
			return true
		}
	}
	return false
}

// prefixSelects is prefix matching with one carve-out: a replicated
// variant is chosen only by a prefix that reaches past the stem it
// shares with its base figure ("fig15-r" does, "fig15" and "fig15-"
// do not), so asking for a paper figure never silently adds its
// 5-replicate variant.
func prefixSelects(name, w string) bool {
	if !strings.HasPrefix(name, w) {
		return false
	}
	if i := strings.LastIndex(name, "-replicated"); i >= 0 {
		return len(w) > i+1
	}
	return true
}
