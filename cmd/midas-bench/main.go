// Command midas-bench regenerates every table and figure of the MIDAS
// paper's evaluation (§5). Each experiment's topology sweep runs on the
// internal/runner worker pool (-parallel), and results flow through a
// pluggable sink: human-readable text CDF tables (default), a JSON
// snapshot for machine-readable perf/result tracking, or flat CSV rows.
// Results are bit-identical at any -parallel value for a given -seed.
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
//
// Usage:
//
//	midas-bench [-figure all|3|7|8|9|10|11|12|13|14|15|16|ht|decomp|ablations]
//	            [-topos N] [-seed S] [-simtime D] [-points N]
//	            [-parallel N] [-format text|json|csv] [-out FILE] [-progress]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

var (
	figure   = flag.String("figure", "all", "which figure to regenerate (comma-separated)")
	topos    = flag.Int("topos", 60, "topologies per experiment")
	seed     = flag.Int64("seed", 2014, "root random seed")
	simTime  = flag.Duration("simtime", 300*time.Millisecond, "simulated airtime per end-to-end run")
	points   = flag.Int("points", 20, "rows per printed CDF (text format)")
	parallel = flag.Int("parallel", 0, "topology tasks evaluated concurrently (0 = GOMAXPROCS)")
	format   = flag.String("format", "text", "output format: text, json or csv")
	outPath  = flag.String("out", "", "write results to this file instead of stdout")
	progress = flag.Bool("progress", false, "report per-task timing on stderr")
	kernels  = flag.Bool("kernels", false,
		"measure the linear-algebra kernel micro-benchmarks (before/after pairs) plus reduced-scale figure benchmarks and emit a JSON snapshot; this is what `make bench-snapshot` commits as BENCH_PR2.json")
	rounds = flag.Int("rounds", 3, "alternating measurement rounds per -kernels benchmark")
)

// runKernels writes the before/after kernel snapshot (see internal/bench).
func runKernels() {
	snap := bench.KernelSnapshot(*rounds, *topos, *seed)
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *outPath == "" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, k := range snap.Kernels {
		fmt.Fprintf(os.Stderr, "%-18s before %8.0f ns/op %3d allocs  after %8.0f ns/op %3d allocs  %.2fx\n",
			k.Name, k.Before.NsOp, k.Before.AllocsOp, k.After.NsOp, k.After.AllocsOp, k.Speedup)
	}
}

func main() {
	flag.Parse()
	if *topos < 1 {
		fmt.Fprintf(os.Stderr, "-topos must be >= 1 (got %d)\n", *topos)
		os.Exit(2)
	}
	if *rounds < 1 {
		fmt.Fprintf(os.Stderr, "-rounds must be >= 1 (got %d)\n", *rounds)
		os.Exit(2)
	}
	sim.Parallelism = *parallel
	if *kernels {
		// Kernel measurements are single-threaded on purpose: the
		// snapshot tracks per-core speed, the figure benchmarks inherit
		// -parallel via sim.Parallelism above.
		runKernels()
		return
	}
	if *progress {
		sim.OnProgress = func(label string, p runner.Progress) {
			fmt.Fprintf(os.Stderr, "%s: %d/%d (task %d took %v)\n",
				label, p.Completed, p.Total, p.Index, p.Elapsed.Round(time.Millisecond))
		}
	}

	// Resolve the experiment selection before touching the output file,
	// so a typo'd -figure cannot truncate an existing snapshot.
	want := strings.Split(*figure, ",")
	var selectedExps []experiment
	for _, e := range experiments() {
		if selected(want, e.name) {
			selectedExps = append(selectedExps, e)
		}
	}
	if len(selectedExps) == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}

	// With -out, results are buffered and the file is written only after
	// every experiment and the sink have succeeded, so no failure mode
	// (bad flags, a mid-run experiment error) can truncate an existing
	// snapshot.
	var buf bytes.Buffer
	var w io.Writer = os.Stdout
	if *outPath != "" {
		w = &buf
	}
	var sink runner.Sink
	switch *format {
	case "text":
		sink = &runner.TextSink{W: w, Points: *points}
	case "json":
		sink = &runner.JSONSink{W: w}
	case "csv":
		sink = &runner.CSVSink{W: w}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}

	effParallel := *parallel
	if effParallel <= 0 {
		effParallel = runtime.GOMAXPROCS(0)
	}
	meta := runner.Meta{
		Tool:        "midas-bench",
		Seed:        *seed,
		Topologies:  *topos,
		Parallelism: effParallel,
		SimTime:     simTime.String(),
	}
	if err := sink.Begin(meta); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, e := range selectedExps {
		res, err := runner.Timed(e.name, e.fn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		if err := sink.Result(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func selected(want []string, name string) bool {
	for _, w := range want {
		if w == "all" || w == name || strings.HasPrefix(name, "fig"+w+"-") ||
			(w == "ht" && strings.HasPrefix(name, "ht-")) ||
			(w == "decomp" && strings.HasPrefix(name, "decomp-")) {
			return true
		}
	}
	return false
}

type experiment struct {
	name string
	fn   func(r *runner.Result) error
}

// experiments lists the runners in paper order.
func experiments() []experiment {
	return []experiment{
		{"fig3-naive-scaling-drop", fig3},
		{"fig7-link-snr", fig7},
		{"fig8-office-a", func(r *runner.Result) error { return fig89(r, sim.OfficeA) }},
		{"fig9-office-b", func(r *runner.Result) error { return fig89(r, sim.OfficeB) }},
		{"fig10-smart-precoding", fig10},
		{"fig11-optimal-gap", fig11},
		{"fig12-spatial-reuse", fig12},
		{"fig13-deadzones", fig13},
		{"ht-hidden-terminals", hiddenTerminals},
		{"fig14-packet-tagging", fig14},
		{"fig15-end-to-end", fig15},
		{"fig16-large-scale", fig16},
		{"decomp-gain-breakdown", decomp},
		{"ablations", ablations},
		{"ext-beamforming", extBeamforming},
		{"ext-placement", extPlacement},
	}
}

func fig3(r *runner.Result) error {
	cas, das, err := sim.Fig3NaiveScalingDrop(*topos, *seed)
	if err != nil {
		return err
	}
	r.AddSeries("CAS capacity drop", "bit/s/Hz", cas)
	r.AddSeries("DAS capacity drop", "bit/s/Hz", das)
	return nil
}

func fig7(r *runner.Result) error {
	cas, das := sim.Fig7LinkSNR(*topos, *seed)
	r.AddSeries("CAS link SNR", "dB", cas)
	r.AddSeries("DAS link SNR", "dB", das)
	r.AddMetric("median DAS link gain", das.MustMedian()-cas.MustMedian(), "dB", "paper: ≈5 dB")
	return nil
}

func fig89(r *runner.Result, o sim.Office) error {
	for _, nAnt := range []int{2, 4} {
		cas, midas, err := sim.FigCapacityCDF(o, nAnt, *topos, *seed)
		if err != nil {
			return err
		}
		r.AddSeries(fmt.Sprintf("%v %dx%d CAS capacity", o, nAnt, nAnt), "bit/s/Hz", cas)
		r.AddSeries(fmt.Sprintf("%v %dx%d MIDAS capacity", o, nAnt, nAnt), "bit/s/Hz", midas)
		_, _, gain := sim.SummarizeGain(cas, midas)
		r.AddMetric(fmt.Sprintf("%v %dx%d median gain", o, nAnt, nAnt), gain*100, "%", "")
	}
	return nil
}

func fig10(r *runner.Result) error {
	c, err := sim.Fig10SmartPrecoding(*topos, *seed)
	if err != nil {
		return err
	}
	r.AddSeries("CAS w/o MIDAS precoding", "bit/s/Hz", c.CASNaive)
	r.AddSeries("CAS w/ MIDAS precoding", "bit/s/Hz", c.CASBalanced)
	r.AddSeries("DAS w/o MIDAS precoding", "bit/s/Hz", c.DASNaive)
	r.AddSeries("DAS w/ MIDAS precoding", "bit/s/Hz", c.DASBalanced)
	cg, _ := stats.MedianGain(c.CASBalanced, c.CASNaive)
	dg, _ := stats.MedianGain(c.DASBalanced, c.DASNaive)
	r.AddMetric("CAS median precoding gain", cg*100, "%", "paper: 12%")
	r.AddMetric("DAS median precoding gain", dg*100, "%", "paper: 30%")
	return nil
}

func fig11(r *runner.Result) error {
	for _, testbed := range []bool{false, true} {
		label := "simulation"
		if testbed {
			label = "testbed (stale optimum)"
		}
		pts, err := sim.Fig11OptimalGap(20, *seed, testbed)
		if err != nil {
			return err
		}
		midas := runner.Series{Label: label + " MIDAS", Unit: "bit/s/Hz"}
		optimal := runner.Series{Label: label + " optimal", Unit: "bit/s/Hz"}
		// The figure's content is the per-topology gap, so keep the
		// paired table in the text output; the series carry the same
		// pairing by index for JSON/CSV.
		r.AddText("-- %s: topology\tMIDAS\toptimal", label)
		var sm, so float64
		for _, p := range pts {
			midas.Values = append(midas.Values, p.MIDAS)
			optimal.Values = append(optimal.Values, p.Optimal)
			r.AddText("%d\t%.2f\t%.2f", p.Topology, p.MIDAS, p.Optimal)
			sm += p.MIDAS
			so += p.Optimal
		}
		r.Series = append(r.Series, midas, optimal)
		r.AddMetric(label+" aggregate MIDAS/optimal", sm/so, "", "")
	}
	return nil
}

func fig12(r *runner.Result) error {
	res := sim.Fig12SpatialReuse(*topos/2, *seed)
	ratios := stats.NewSample()
	for _, p := range res {
		ratios.Add(p.Ratio)
	}
	r.AddSeries("simultaneous-stream ratio MIDAS/CAS", "", ratios)
	r.AddMetric("median ratio", ratios.MustMedian(), "", "paper: ≈1.5")
	return nil
}

func fig13(r *runner.Result) error {
	res := sim.Fig13Deadzones(10, *seed)
	r.AddMetric("spots measured", float64(res.Spots), "", "")
	r.AddMetric("CAS deadspots", float64(res.CASDeadspots), "", "")
	r.AddMetric("DAS deadspots", float64(res.DASDeadspots), "", "")
	r.AddMetric("reduction", 100*(1-float64(res.DASDeadspots)/float64(res.CASDeadspots)), "%", "paper: 91%")
	r.AddText("-- example map (CAS left, DAS right; '#' = deadspot)")
	addMaps(r, res)
	return nil
}

// addMaps renders the Fig 13 deadzone maps side by side, downsampled.
func addMaps(r *runner.Result, res sim.DeadzoneResult) {
	if res.MapCols == 0 {
		return
	}
	rows := len(res.CASMap) / res.MapCols
	const step = 3
	for row := 0; row < rows; row += step {
		var left, right strings.Builder
		for c := 0; c < res.MapCols; c += step {
			i := row*res.MapCols + c
			if i >= len(res.CASMap) {
				break
			}
			left.WriteByte(cell(res.CASMap[i]))
			right.WriteByte(cell(res.DASMap[i]))
		}
		r.AddText("%s   %s", left.String(), right.String())
	}
}

func cell(dead bool) byte {
	if dead {
		return '#'
	}
	return '.'
}

func hiddenTerminals(r *runner.Result) error {
	res := sim.HiddenTerminals(10, *seed)
	r.AddMetric("spots measured", float64(res.Spots), "", "")
	r.AddMetric("CAS hidden-terminal spots", float64(res.CASSpots), "", "")
	r.AddMetric("DAS hidden-terminal spots", float64(res.DASSpots), "", "")
	r.AddMetric("reduction", 100*(1-float64(res.DASSpots)/float64(res.CASSpots)), "%", "paper: 94%")
	return nil
}

func fig14(r *runner.Result) error {
	random, tagged, err := sim.Fig14PacketTagging(*topos, *seed)
	if err != nil {
		return err
	}
	r.AddSeries("random client pair", "bit/s/Hz", random)
	r.AddSeries("tag-driven client pair", "bit/s/Hz", tagged)
	_, _, gain := sim.SummarizeGain(random, tagged)
	r.AddMetric("median tagging gain", gain*100, "%", "paper: ≈50%")
	return nil
}

func e2eOpts() sim.E2EOpts {
	return sim.E2EOpts{Topologies: *topos, SimTime: *simTime, Seed: *seed}
}

func fig15(r *runner.Result) error {
	cas, midas := sim.Fig15EndToEnd(e2eOpts())
	r.AddSeries("CAS network capacity", "bit/s/Hz", cas)
	r.AddSeries("MIDAS network capacity", "bit/s/Hz", midas)
	_, _, gain := sim.SummarizeGain(cas, midas)
	r.AddMetric("median end-to-end gain", gain*100, "%", "paper: ≈200%")
	return nil
}

func fig16(r *runner.Result) error {
	o := e2eOpts()
	if o.Topologies > 20 {
		o.Topologies = 20 // 8-AP DES is costly; 20 topologies suffice for the CDF shape
	}
	cas, midas, err := sim.Fig16LargeScale(o)
	if err != nil {
		return err
	}
	r.AddSeries("CAS 8-AP capacity", "bit/s/Hz", cas)
	r.AddSeries("MIDAS 8-AP capacity", "bit/s/Hz", midas)
	_, _, gain := sim.SummarizeGain(cas, midas)
	r.AddMetric("median large-scale gain", gain*100, "%", "paper: >150%")
	return nil
}

func decomp(r *runner.Result) error {
	o := e2eOpts()
	if o.Topologies > 20 {
		o.Topologies = 20
	}
	res := sim.Decomposition(o)
	r.AddMetric("CAS baseline median", res.CAS.MustMedian(), "bit/s/Hz", "")
	r.AddMetric("+ smart precoding median", res.CASPlusPrecoding.MustMedian(), "bit/s/Hz", "")
	r.AddMetric("+ DAS deployment median", res.DASPlusPrecoding.MustMedian(), "bit/s/Hz", "")
	r.AddMetric("+ DAS-aware MAC median (full MIDAS)", res.FullMIDAS.MustMedian(), "bit/s/Hz", "")
	return nil
}

func ablations(r *runner.Result) error {
	o := e2eOpts()
	if o.Topologies > 12 {
		o.Topologies = 12
	}
	for _, w := range []int{1, 2, 3, 4} {
		res := sim.AblationTagWidth([]int{w}, o)
		r.AddMetric(fmt.Sprintf("tag width %d median", w), res[w].MustMedian(), "bit/s/Hz", "")
	}
	for _, w := range []time.Duration{0, 34 * time.Microsecond, 68 * time.Microsecond} {
		res := sim.AblationWaitWindow([]time.Duration{w}, o)
		r.AddMetric(fmt.Sprintf("wait window %v median", w), res[w].MustMedian(), "bit/s/Hz", "")
	}
	sched := sim.AblationScheduler(o)
	for _, name := range []string{"drr", "rr", "random"} {
		r.AddMetric("scheduler "+name+" median", sched[name].MustMedian(), "bit/s/Hz", "")
	}
	corr := sim.AblationCorrelation([]float64{0, 0.3, 0.6, 0.9}, 40, *seed)
	for _, rho := range []float64{0, 0.3, 0.6, 0.9} {
		r.AddMetric(fmt.Sprintf("CAS correlation rho %.1f median", rho), corr[rho].MustMedian(), "bit/s/Hz", "")
	}
	return nil
}

// extBeamforming quantifies §7's localized single-user beamforming.
func extBeamforming(r *runner.Result) error {
	for _, win := range []float64{6, 12, 30} {
		res := sim.BeamformingStudy(*topos, win, *seed)
		r.AddMetric(fmt.Sprintf("window %.0f dB SNR full", win), res.SNRFull.MustMedian(), "dB", "")
		r.AddMetric(fmt.Sprintf("window %.0f dB SNR local", win), res.SNRLocal.MustMedian(), "dB", "")
		r.AddMetric(fmt.Sprintf("window %.0f dB silenced area full", win), res.SilencedFull.MustMedian()*100, "%", "")
		r.AddMetric(fmt.Sprintf("window %.0f dB silenced area local", win), res.SilencedLocal.MustMedian()*100, "%", "")
	}
	return nil
}

// extPlacement quantifies the §7 open problem of optimising antenna
// placement.
func extPlacement(r *runner.Result) error {
	res, err := sim.PlacementStudy(*topos/2, 30, *seed)
	if err != nil {
		return err
	}
	r.AddSeries("random placement coverage objective", "dB", res.RandomCoverage)
	r.AddSeries("optimized placement coverage objective", "dB", res.OptimizedCoverage)
	r.AddSeries("random placement capacity", "bit/s/Hz", res.RandomCapacity)
	r.AddSeries("optimized placement capacity", "bit/s/Hz", res.OptimizedCapacity)
	r.AddMetric("median coverage gain",
		res.OptimizedCoverage.MustMedian()-res.RandomCoverage.MustMedian(), "dB", "")
	r.AddMetric("capacity ratio",
		res.OptimizedCapacity.MustMedian()/res.RandomCapacity.MustMedian(), "", "")
	return nil
}
