// Command midas-sim runs one configurable MIDAS-vs-CAS network scenario
// and prints per-AP and network-level results — the quickest way to poke
// at the simulator interactively.
//
// Usage:
//
//	midas-sim [-aps 1|3|8] [-mode midas|cas|both] [-clients N] [-antennas N]
//	          [-seed S] [-simtime D] [-txop D] [-tagwidth N] [-scheduler drr|rr|random]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

var (
	nAPs      = flag.Int("aps", 3, "number of APs: 1, 3 (testbed triangle) or 8 (60×60 m)")
	mode      = flag.String("mode", "both", "midas, cas or both")
	clients   = flag.Int("clients", 4, "clients per AP")
	antennas  = flag.Int("antennas", 4, "antennas per AP")
	seed      = flag.Int64("seed", 1, "random seed")
	simTime   = flag.Duration("simtime", 500*time.Millisecond, "simulated airtime")
	txop      = flag.Duration("txop", 3*time.Millisecond, "TXOP data-phase duration")
	tagWidth  = flag.Int("tagwidth", 2, "antennas tagged per packet (MIDAS)")
	scheduler = flag.String("scheduler", "drr", "client scheduler: drr, rr or random")
)

func main() {
	flag.Parse()
	if *mode == "midas" || *mode == "both" {
		run(sim.KindMIDAS, topology.DAS)
	}
	if *mode == "cas" || *mode == "both" {
		run(sim.KindCAS, topology.CAS)
	}
}

func run(kind sim.Kind, tmode topology.Mode) {
	dep, err := deployment(tmode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := sim.DefaultStationOpts(kind)
	opts.TXOP = *txop
	opts.TagWidth = *tagWidth
	opts.SchedulerName = *scheduler
	src := rng.New(*seed + 1000)
	p := channel.Default()
	sim.EnsureAssociated(dep, p, src.Split("model"))
	net := sim.NewNetwork(dep, p, opts, src)
	net.Run(*simTime)

	fmt.Printf("=== %v: %d APs, %d antennas × %d clients each, %v simulated ===\n",
		kind, dep.NumAPs(), *antennas, *clients, *simTime)
	for _, st := range net.Stations {
		fmt.Printf("AP%d: txops=%-4d streams=%-4d collisions=%-3d sounding=%v data=%v delivered=%.2f bit·s/Hz\n",
			st.ID, st.TXOPs, st.StreamsServed, st.CollidedStarts,
			st.SoundingOvhd.Round(time.Millisecond), st.AirtimeData.Round(time.Millisecond),
			st.BitsPerHz)
	}
	fmt.Printf("network capacity: %.2f bit/s/Hz   mean MU group: %.2f\n\n",
		net.NetworkCapacity(), net.MeanGroupSize())
}

func deployment(tmode topology.Mode) (*topology.Deployment, error) {
	cfg := topology.DefaultConfig(tmode)
	cfg.ClientsPerAP = *clients
	cfg.AntennasPerAP = *antennas
	switch *nAPs {
	case 1:
		return topology.SingleAP(cfg, rng.New(*seed)), nil
	case 3:
		return topology.ThreeAPTestbed(cfg, rng.New(*seed)), nil
	case 8:
		ls := topology.DefaultLargeScale(tmode)
		ls.ClientsPerAP = *clients
		ls.AntennasPerAP = *antennas
		return topology.LargeScale(ls, rng.New(*seed))
	default:
		return nil, fmt.Errorf("midas-sim: unsupported AP count %d (want 1, 3 or 8)", *nAPs)
	}
}
