// Command midas-sim runs one configurable MIDAS-vs-CAS network scenario
// and prints per-AP and network-level results — the quickest way to poke
// at the simulator interactively. With -runs N it replicates the
// scenario over N consecutive seeds on the internal/runner worker pool
// (-parallel bounds the pool) and appends capacity statistics across
// replicates; per-replicate output and statistics are identical at any
// -parallel value.
//
// Usage:
//
//	midas-sim [-aps 1|3|8] [-mode midas|cas|both] [-clients N] [-antennas N]
//	          [-seed S] [-simtime D] [-txop D] [-tagwidth N] [-scheduler drr|rr|random]
//	          [-runs N] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

var (
	nAPs      = flag.Int("aps", 3, "number of APs: 1, 3 (testbed triangle) or 8 (60×60 m)")
	mode      = flag.String("mode", "both", "midas, cas or both")
	clients   = flag.Int("clients", 4, "clients per AP")
	antennas  = flag.Int("antennas", 4, "antennas per AP")
	seed      = flag.Int64("seed", 1, "random seed (run r uses seed+r)")
	simTime   = flag.Duration("simtime", 500*time.Millisecond, "simulated airtime")
	txop      = flag.Duration("txop", 3*time.Millisecond, "TXOP data-phase duration")
	tagWidth  = flag.Int("tagwidth", 2, "antennas tagged per packet (MIDAS)")
	scheduler = flag.String("scheduler", "drr", "client scheduler: drr, rr or random")
	runs      = flag.Int("runs", 1, "replicates over consecutive seeds")
	parallel  = flag.Int("parallel", 0, "replicates evaluated concurrently (0 = GOMAXPROCS)")
	memStats  = flag.Bool("memstats", false,
		"report heap allocations per simulated TXOP (single replicate only) — the steady-state precoding path should contribute none")
)

func main() {
	flag.Parse()
	if *runs < 1 {
		fmt.Fprintf(os.Stderr, "-runs must be >= 1 (got %d)\n", *runs)
		os.Exit(2)
	}
	if *memStats && *runs != 1 {
		fmt.Fprintln(os.Stderr, "-memstats needs -runs 1 (per-process counters cannot be split across replicates)")
		os.Exit(2)
	}
	if *mode == "midas" || *mode == "both" {
		runAll(sim.KindMIDAS, topology.DAS)
	}
	if *mode == "cas" || *mode == "both" {
		runAll(sim.KindCAS, topology.CAS)
	}
}

// runResult is one replicate's formatted report plus its headline
// numbers for cross-replicate statistics.
type runResult struct {
	report   string
	capacity float64
}

func runAll(kind sim.Kind, tmode topology.Mode) {
	opts := runner.Options{Parallelism: *parallel}
	results, err := runner.Map(context.Background(), *runs, opts,
		func(_ context.Context, r int) (runResult, error) {
			return runScenario(kind, tmode, *seed+int64(r))
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	caps := stats.NewSample()
	for _, res := range results {
		fmt.Print(res.report)
		caps.Add(res.capacity)
	}
	if *runs > 1 {
		mean, _ := caps.Mean()
		fmt.Printf("%v over %d runs: capacity median %.2f  mean %.2f bit/s/Hz\n\n",
			kind, *runs, caps.MustMedian(), mean)
	}
}

// runScenario builds and runs one replicate and formats its report. All
// randomness comes from the replicate's own seed, so replicates are
// independent tasks for the worker pool.
func runScenario(kind sim.Kind, tmode topology.Mode, runSeed int64) (runResult, error) {
	dep, err := deployment(tmode, runSeed)
	if err != nil {
		return runResult{}, err
	}
	opts := sim.DefaultStationOpts(kind)
	opts.TXOP = *txop
	opts.TagWidth = *tagWidth
	opts.SchedulerName = *scheduler
	src := rng.New(runSeed + 1000)
	p := channel.Default()
	sim.EnsureAssociated(dep, p, src.Split("model"))
	net := sim.NewNetwork(dep, p, opts, src)
	var before runtime.MemStats
	if *memStats {
		runtime.GC()
		runtime.ReadMemStats(&before)
	}
	net.Run(*simTime)
	var allocReport string
	if *memStats {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		mallocs := after.Mallocs - before.Mallocs
		bytes := after.TotalAlloc - before.TotalAlloc
		if txops := net.TotalTXOPs(); txops > 0 {
			allocReport = fmt.Sprintf("memstats: %d heap allocs (%d B) over %d TXOPs = %.1f allocs/TXOP\n",
				mallocs, bytes, txops, float64(mallocs)/float64(txops))
		} else {
			allocReport = fmt.Sprintf("memstats: %d heap allocs (%d B), no TXOPs completed\n", mallocs, bytes)
		}
	}

	var b []byte
	appendf := func(format string, args ...any) {
		b = fmt.Appendf(b, format, args...)
	}
	appendf("=== %v: %d APs, %d antennas × %d clients each, %v simulated (seed %d) ===\n",
		kind, dep.NumAPs(), *antennas, *clients, *simTime, runSeed)
	for _, st := range net.Stations {
		appendf("AP%d: txops=%-4d streams=%-4d collisions=%-3d sounding=%v data=%v delivered=%.2f bit·s/Hz\n",
			st.ID, st.TXOPs, st.StreamsServed, st.CollidedStarts,
			st.SoundingOvhd.Round(time.Millisecond), st.AirtimeData.Round(time.Millisecond),
			st.BitsPerHz)
	}
	appendf("network capacity: %.2f bit/s/Hz   mean MU group: %.2f\n%s\n",
		net.NetworkCapacity(), net.MeanGroupSize(), allocReport)
	return runResult{report: string(b), capacity: net.NetworkCapacity()}, nil
}

func deployment(tmode topology.Mode, runSeed int64) (*topology.Deployment, error) {
	cfg := topology.DefaultConfig(tmode)
	cfg.ClientsPerAP = *clients
	cfg.AntennasPerAP = *antennas
	switch *nAPs {
	case 1:
		return topology.SingleAP(cfg, rng.New(runSeed)), nil
	case 3:
		return topology.ThreeAPTestbed(cfg, rng.New(runSeed)), nil
	case 8:
		ls := topology.DefaultLargeScale(tmode)
		ls.ClientsPerAP = *clients
		ls.AntennasPerAP = *antennas
		return topology.LargeScale(ls, rng.New(runSeed))
	default:
		return nil, fmt.Errorf("midas-sim: unsupported AP count %d (want 1, 3 or 8)", *nAPs)
	}
}
