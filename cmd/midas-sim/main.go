// Command midas-sim runs MIDAS-vs-CAS simulations interactively. It has
// two modes:
//
// Scenario mode (-scenario, -spec or -list) resolves a registered
// experiment from the internal/scenario registry — every figure of the
// paper's evaluation plus the beyond-paper workloads — and drives it
// from a declarative JSON spec. -spec loads a spec file, -set overrides
// individual fields (a comma-separated value declares a sweep), and the
// expanded runs execute on the internal/runner pool:
//
//	midas-sim -list
//	midas-sim -scenario fig12 -seed 7
//	midas-sim -scenario fig15-end -spec examples/office/spec.json -set clients=8
//	midas-sim -scenario dense-venue -set clients=2,4,8 -format json
//	midas-sim -scenario fig15-end -replicates 8    # mean ± 95% CI summaries
//
// -replicates N (or -set replicates=N) fans every run over N split
// seeds and reports {mean, stddev, ci95, n} summaries per metric and
// per series median instead of raw per-replicate output.
//
// Legacy mode (no -scenario/-spec) runs one hand-configured network and
// prints per-AP and network-level results. With -runs N it replicates
// the scenario over N consecutive seeds on the worker pool (-parallel
// bounds it); per-replicate output is identical at any -parallel value.
//
//	midas-sim [-aps 1|3|8] [-mode midas|cas|both] [-clients N] [-antennas N]
//	          [-seed S] [-simtime D] [-txop D] [-tagwidth N] [-scheduler drr|rr|random]
//	          [-runs N] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

var (
	nAPs       = flag.Int("aps", 3, "number of APs: 1, 3 (testbed triangle) or 8 (60×60 m)")
	mode       = flag.String("mode", "both", "midas, cas or both")
	clients    = flag.Int("clients", 4, "clients per AP")
	antennas   = flag.Int("antennas", 4, "antennas per AP")
	seed       = flag.Int64("seed", 1, "random seed (run r uses seed+r)")
	simTime    = flag.Duration("simtime", 500*time.Millisecond, "simulated airtime")
	txop       = flag.Duration("txop", 3*time.Millisecond, "TXOP data-phase duration")
	tagWidth   = flag.Int("tagwidth", 2, "antennas tagged per packet (MIDAS)")
	scheduler  = flag.String("scheduler", "drr", "client scheduler: drr, rr or random")
	runs       = flag.Int("runs", 1, "legacy mode: replicates over consecutive seeds with per-replicate output; in scenario mode an alias for -replicates (split seeds, merged summaries)")
	parallel   = flag.Int("parallel", 0, "replicates evaluated concurrently (0 = GOMAXPROCS)")
	replicates = flag.Int("replicates", 1,
		"scenario-mode: replicate every run over split seeds and report {mean, stddev, ci95, n} summaries instead of raw per-replicate output")
	memStats = flag.Bool("memstats", false,
		"report heap allocations per simulated TXOP (single replicate only) — the steady-state precoding path should contribute none")

	scenarioName = flag.String("scenario", "", "run a registered scenario (see -list); unique prefixes resolve")
	specPath     = flag.String("spec", "", "load scenario overrides from this JSON spec file")
	listAll      = flag.Bool("list", false, "list registered scenarios and exit")
	format       = flag.String("format", "text", "scenario-mode output format: text, json or csv")
	outPath      = flag.String("out", "", "scenario-mode: write results to this file instead of stdout")
	setFlags     multiFlag
)

func init() {
	flag.Var(&setFlags, "set",
		"scenario-mode spec override key=value (repeatable); a comma-separated value sweeps, e.g. -set clients=2,4,8")
}

// multiFlag collects repeated -set flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	flag.Parse()
	if *listAll {
		listScenarios(os.Stdout)
		return
	}
	if *scenarioName != "" || *specPath != "" || len(setFlags) > 0 {
		if err := runScenarioMode(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// Mirror of the scenario-mode legacy-flag rejection: scenario-only
	// output flags must not be silently ignored on the legacy path.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "format" || f.Name == "out" || f.Name == "replicates" {
			fmt.Fprintf(os.Stderr, "-%s applies to scenario mode only (add -scenario or -spec; legacy mode replicates with -runs)\n", f.Name)
			os.Exit(2)
		}
	})
	if *runs < 1 {
		fmt.Fprintf(os.Stderr, "-runs must be >= 1 (got %d)\n", *runs)
		os.Exit(2)
	}
	if *memStats && *runs != 1 {
		fmt.Fprintln(os.Stderr, "-memstats needs -runs 1 (per-process counters cannot be split across replicates)")
		os.Exit(2)
	}
	if *mode == "midas" || *mode == "both" {
		runAll(sim.KindMIDAS, topology.DAS)
	}
	if *mode == "cas" || *mode == "both" {
		runAll(sim.KindCAS, topology.CAS)
	}
}

// listScenarios prints the registry with each scenario's description.
func listScenarios(w *os.File) {
	names := scenario.Names()
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		sc, _ := scenario.Get(n)
		about := ""
		if a, ok := sc.(scenario.About); ok {
			about = a.About()
		}
		fmt.Fprintf(w, "%-*s  %s\n", width, n, about)
	}
}

// runScenarioMode resolves the scenario, assembles the override spec
// from -spec, -set and any explicitly passed shared flags, and renders
// the result through a runner sink.
func runScenarioMode() error {
	overrides := scenario.Spec{}
	if *specPath != "" {
		var err error
		overrides, err = scenario.LoadSpec(*specPath)
		if err != nil {
			return err
		}
	}
	// Shared legacy flags participate when explicitly set, so
	// `-scenario fig15-end -seed 7 -clients 8` works as expected. Legacy
	// flags with no spec equivalent are rejected rather than silently
	// dropped — the run would otherwise not measure what was asked.
	var flagErr error
	runsSet, replicatesSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			if *seed == 0 {
				// Merge treats 0 as "inherit the scenario default", so an
				// explicit 0 cannot be expressed; refuse it loudly.
				flagErr = fmt.Errorf("midas-sim: -seed 0 cannot be used in scenario mode (0 means \"inherit\"); pick a nonzero seed")
				return
			}
			overrides.Seed = *seed
		case "clients":
			overrides.Clients = *clients
		case "antennas":
			overrides.Antennas = *antennas
		case "simtime":
			overrides.SimTime = scenario.Duration(*simTime)
		case "runs", "replicates":
			// Two spellings of the spec's replicate count (-runs is the
			// legacy one). 0 would merge as "inherit the scenario
			// default", so non-positive counts are refused loudly.
			v := *runs
			if f.Name == "replicates" {
				v, replicatesSet = *replicates, true
			} else {
				runsSet = true
			}
			if v < 1 {
				flagErr = fmt.Errorf("midas-sim: -%s must be >= 1 (got %d)", f.Name, v)
				return
			}
			overrides.Replicates = v
		case "parallel":
			overrides.Parallelism = *parallel
		case "aps", "mode", "txop", "tagwidth", "scheduler", "memstats":
			flagErr = fmt.Errorf("midas-sim: -%s applies to legacy mode only and is not part of the scenario spec (use -set, or drop -scenario/-spec)", f.Name)
		}
	})
	if flagErr != nil {
		return flagErr
	}
	if runsSet && replicatesSet && *runs != *replicates {
		return fmt.Errorf("midas-sim: -runs %d conflicts with -replicates %d (they are the same knob; drop one)", *runs, *replicates)
	}
	for _, kv := range setFlags {
		if err := applySet(&overrides, kv); err != nil {
			return err
		}
	}
	name := *scenarioName
	if name == "" {
		name = overrides.Scenario
	}
	if name == "" {
		return fmt.Errorf("midas-sim: no scenario named (use -scenario, or a spec file with a \"scenario\" field; -list shows all)")
	}
	sc, err := scenario.Find(name)
	if err != nil {
		return err
	}
	// A spec file that names a different scenario than -scenario is a
	// conflict, not something to silently override: the file's knob
	// values were tuned for the scenario it declares.
	if *scenarioName != "" && overrides.Scenario != "" {
		fromSpec, err := scenario.Find(overrides.Scenario)
		if err != nil {
			return fmt.Errorf("midas-sim: -scenario %s given, but the spec file names %q: %w", sc.Name(), overrides.Scenario, err)
		}
		if fromSpec.Name() != sc.Name() {
			return fmt.Errorf("midas-sim: -scenario %s conflicts with the spec file's scenario %s (drop one)", sc.Name(), fromSpec.Name())
		}
	}
	// Resolve up front: the recorded metadata must describe the spec the
	// run actually executes (scenario defaults + file + -set), and a bad
	// spec or -format should fail before any simulation starts.
	spec, err := scenario.Resolve(sc, overrides)
	if err != nil {
		return err
	}
	var buf strings.Builder
	sink, err := runner.NewSink(*format, &buf)
	if err != nil {
		return fmt.Errorf("midas-sim: %w", err)
	}

	// The engine splits the spec's parallelism budget between its run
	// pool and each run's inner topology sweep itself (the task specs
	// carry the split), so no sim.Parallelism global dance is needed
	// here anymore.
	res, err := scenario.Run(context.Background(), sc, spec)
	if err != nil {
		return err
	}

	// The meta conventions (effective parallelism, omitted zero fields)
	// live on the spec itself, shared with midas-serve, so the two
	// tools' snapshots for one spec differ only in the tool name.
	meta := spec.SinkMeta("midas-sim")
	if err := sink.Begin(meta); err != nil {
		return err
	}
	if err := sink.Result(res.RunnerResult()); err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if *outPath != "" {
		return os.WriteFile(*outPath, []byte(buf.String()), 0o644)
	}
	_, err = os.Stdout.WriteString(buf.String())
	return err
}

// setters maps every -set key to its parser/assignment; the "unknown
// key" error derives its vocabulary from this table, so the two cannot
// drift apart. In the spec itself 0 means "inherit the scenario
// default", so count keys reject non-positive values here — a literal
// -set clients=0 must error, not silently run the default.
var setters = map[string]func(spec *scenario.Spec, key, val string) error{
	"scenario":    func(s *scenario.Spec, _, v string) error { s.Scenario = v; return nil },
	"clients":     func(s *scenario.Spec, k, v string) error { return setCount(&s.Clients, k, v) },
	"antennas":    func(s *scenario.Spec, k, v string) error { return setCount(&s.Antennas, k, v) },
	"topologies":  func(s *scenario.Spec, k, v string) error { return setCount(&s.Topologies, k, v) },
	"topos":       func(s *scenario.Spec, k, v string) error { return setCount(&s.Topologies, k, v) },
	"replicates":  func(s *scenario.Spec, k, v string) error { return setCount(&s.Replicates, k, v) },
	"runs":        func(s *scenario.Spec, k, v string) error { return setCount(&s.Replicates, k, v) },
	"parallelism": func(s *scenario.Spec, k, v string) error { return setInt(&s.Parallelism, k, v) },
	"parallel":    func(s *scenario.Spec, k, v string) error { return setInt(&s.Parallelism, k, v) },
	"size": func(s *scenario.Spec, k, v string) error {
		if err := setCount(&s.Antennas, k, v); err != nil {
			return err
		}
		s.Clients = s.Antennas
		return nil
	},
	"seed": func(s *scenario.Spec, k, v string) error {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("midas-sim: -set %s wants an integer (got %q)", k, v)
		}
		if n == 0 {
			// 0 means "inherit the scenario default" in the spec, so an
			// explicit 0 would be silently replaced; refuse it.
			return fmt.Errorf("midas-sim: -set seed=0 cannot be expressed (0 means \"inherit\"); pick a nonzero seed")
		}
		s.Seed = n
		return nil
	},
	"simtime": func(s *scenario.Spec, k, v string) error {
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("midas-sim: -set %s wants a duration like 300ms (got %q)", k, v)
		}
		s.SimTime = scenario.Duration(d)
		return nil
	},
	"aps": func(s *scenario.Spec, k, v string) error {
		n, err := parseCount(k, v)
		if err != nil {
			return err
		}
		ensureVenue(s).APs = n
		return nil
	},
	"width":           func(s *scenario.Spec, k, v string) error { return setFloat(&ensureVenue(s).Width, k, v) },
	"height":          func(s *scenario.Spec, k, v string) error { return setFloat(&ensureVenue(s).Height, k, v) },
	"coverage_radius": func(s *scenario.Spec, k, v string) error { return setFloat(&ensureVenue(s).CoverageRadius, k, v) },
	"sigma_db":        func(s *scenario.Spec, k, v string) error { return setShadow(&ensureShadow(s).SigmaDB, k, v) },
	"cas_correlation": func(s *scenario.Spec, k, v string) error { return setShadow(&ensureShadow(s).CASCorrelation, k, v) },
	"wall_db":         func(s *scenario.Spec, k, v string) error { return setShadow(&ensureShadow(s).WallDB, k, v) },
	"max_wall_db":     func(s *scenario.Spec, k, v string) error { return setShadow(&ensureShadow(s).MaxWallDB, k, v) },
	"room_w":          func(s *scenario.Spec, k, v string) error { return setShadow(&ensureShadow(s).RoomW, k, v) },
	"room_h":          func(s *scenario.Spec, k, v string) error { return setShadow(&ensureShadow(s).RoomH, k, v) },
}

func parseCount(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("midas-sim: -set %s wants an integer (got %q)", key, val)
	}
	if n < 1 {
		return 0, fmt.Errorf("midas-sim: -set %s must be >= 1 (got %d)", key, n)
	}
	return n, nil
}

func setCount(dst *int, key, val string) error {
	n, err := parseCount(key, val)
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

func setInt(dst *int, key, val string) error {
	n, err := strconv.Atoi(val)
	if err != nil {
		return fmt.Errorf("midas-sim: -set %s wants an integer (got %q)", key, val)
	}
	*dst = n
	return nil
}

func setFloat(dst *float64, key, val string) error {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("midas-sim: -set %s wants a number (got %q)", key, val)
	}
	*dst = f
	return nil
}

func setShadow(dst **float64, key, val string) error {
	var f float64
	if err := setFloat(&f, key, val); err != nil {
		return err
	}
	*dst = &f
	return nil
}

func ensureVenue(s *scenario.Spec) *scenario.Venue {
	if s.Venue == nil {
		s.Venue = &scenario.Venue{}
	}
	return s.Venue
}

func ensureShadow(s *scenario.Spec) *scenario.Shadowing {
	if s.Shadowing == nil {
		s.Shadowing = &scenario.Shadowing{}
	}
	return s.Shadowing
}

// applySet applies one -set key=value override. A comma-separated value
// declares a sweep over the listed values.
func applySet(spec *scenario.Spec, kv string) error {
	key, val, ok := strings.Cut(kv, "=")
	if !ok || key == "" || val == "" {
		return fmt.Errorf("midas-sim: bad -set %q (want key=value)", kv)
	}
	if strings.Contains(val, ",") {
		vals := []float64{}
		for _, part := range strings.Split(val, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("midas-sim: bad -set sweep value %q in %q", part, kv)
			}
			vals = append(vals, v)
		}
		if spec.Sweep == nil {
			spec.Sweep = map[string][]float64{}
		}
		spec.Sweep[key] = vals
		return nil
	}
	set, ok := setters[key]
	if !ok {
		known := make([]string, 0, len(setters))
		for k := range setters {
			known = append(known, k)
		}
		sort.Strings(known)
		return fmt.Errorf("midas-sim: unknown -set key %q (known: %s)", key, strings.Join(known, ", "))
	}
	return set(spec, key, val)
}

// runResult is one replicate's formatted report plus its headline
// numbers for cross-replicate statistics.
type runResult struct {
	report   string
	capacity float64
}

func runAll(kind sim.Kind, tmode topology.Mode) {
	opts := runner.Options{Parallelism: *parallel}
	results, err := runner.Map(context.Background(), *runs, opts,
		func(_ context.Context, r int) (runResult, error) {
			return runScenario(kind, tmode, *seed+int64(r))
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	caps := stats.NewSample()
	for _, res := range results {
		fmt.Print(res.report)
		caps.Add(res.capacity)
	}
	if *runs > 1 {
		mean, _ := caps.Mean()
		fmt.Printf("%v over %d runs: capacity median %.2f  mean %.2f bit/s/Hz\n\n",
			kind, *runs, caps.MustMedian(), mean)
	}
}

// runScenario builds and runs one replicate and formats its report. All
// randomness comes from the replicate's own seed, so replicates are
// independent tasks for the worker pool.
func runScenario(kind sim.Kind, tmode topology.Mode, runSeed int64) (runResult, error) {
	dep, err := deployment(tmode, runSeed)
	if err != nil {
		return runResult{}, err
	}
	opts := sim.DefaultStationOpts(kind)
	opts.TXOP = *txop
	opts.TagWidth = *tagWidth
	opts.SchedulerName = *scheduler
	src := rng.New(runSeed + 1000)
	p := channel.Default()
	sim.EnsureAssociated(dep, p, src.Split("model"))
	net := sim.NewNetwork(dep, p, opts, src)
	var before runtime.MemStats
	if *memStats {
		runtime.GC()
		runtime.ReadMemStats(&before)
	}
	net.Run(*simTime)
	var allocReport string
	if *memStats {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		mallocs := after.Mallocs - before.Mallocs
		bytes := after.TotalAlloc - before.TotalAlloc
		if txops := net.TotalTXOPs(); txops > 0 {
			allocReport = fmt.Sprintf("memstats: %d heap allocs (%d B) over %d TXOPs = %.1f allocs/TXOP\n",
				mallocs, bytes, txops, float64(mallocs)/float64(txops))
		} else {
			allocReport = fmt.Sprintf("memstats: %d heap allocs (%d B), no TXOPs completed\n", mallocs, bytes)
		}
	}

	var b []byte
	appendf := func(format string, args ...any) {
		b = fmt.Appendf(b, format, args...)
	}
	appendf("=== %v: %d APs, %d antennas × %d clients each, %v simulated (seed %d) ===\n",
		kind, dep.NumAPs(), *antennas, *clients, *simTime, runSeed)
	for _, st := range net.Stations {
		appendf("AP%d: txops=%-4d streams=%-4d collisions=%-3d sounding=%v data=%v delivered=%.2f bit·s/Hz\n",
			st.ID, st.TXOPs, st.StreamsServed, st.CollidedStarts,
			st.SoundingOvhd.Round(time.Millisecond), st.AirtimeData.Round(time.Millisecond),
			st.BitsPerHz)
	}
	appendf("network capacity: %.2f bit/s/Hz   mean MU group: %.2f\n%s\n",
		net.NetworkCapacity(), net.MeanGroupSize(), allocReport)
	return runResult{report: string(b), capacity: net.NetworkCapacity()}, nil
}

func deployment(tmode topology.Mode, runSeed int64) (*topology.Deployment, error) {
	cfg := topology.DefaultConfig(tmode)
	cfg.ClientsPerAP = *clients
	cfg.AntennasPerAP = *antennas
	switch *nAPs {
	case 1:
		return topology.SingleAP(cfg, rng.New(runSeed)), nil
	case 3:
		return topology.ThreeAPTestbed(cfg, rng.New(runSeed)), nil
	case 8:
		ls := topology.DefaultLargeScale(tmode)
		ls.ClientsPerAP = *clients
		ls.AntennasPerAP = *antennas
		return topology.LargeScale(ls, rng.New(runSeed))
	default:
		return nil, fmt.Errorf("midas-sim: unsupported AP count %d (want 1, 3 or 8)", *nAPs)
	}
}
