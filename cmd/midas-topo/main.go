// Command midas-topo generates and inspects deployments: prints antenna
// and client placements, validates the paper's placement rules, renders
// an ASCII map, and optionally records a CSI trace for the deployment.
//
// Usage:
//
//	midas-topo [-aps 1|3|8] [-mode das|cas] [-seed S] [-map] [-trace out.csi -frames N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

var (
	nAPs     = flag.Int("aps", 1, "number of APs: 1, 3 or 8")
	mode     = flag.String("mode", "das", "das or cas")
	seed     = flag.Int64("seed", 1, "random seed")
	drawMap  = flag.Bool("map", false, "render an ASCII deployment map")
	traceOut = flag.String("trace", "", "record a CSI trace to this file")
	frames   = flag.Int("frames", 50, "frames to record with -trace")
)

func main() {
	flag.Parse()
	tmode := topology.DAS
	if *mode == "cas" {
		tmode = topology.CAS
	}
	dep, err := build(tmode)
	if err != nil {
		fatal(err)
	}
	if err := dep.Validate(); err != nil {
		fatal(fmt.Errorf("generated deployment failed validation: %w", err))
	}
	fmt.Printf("mode=%v APs=%d antennas=%d clients=%d\n",
		dep.Mode, dep.NumAPs(), len(dep.Antennas), len(dep.Clients))
	for ap, pos := range dep.APs {
		fmt.Printf("AP%d at %v\n", ap, pos)
		for _, k := range dep.AntennasOf(ap) {
			a := dep.Antennas[k]
			fmt.Printf("  antenna %d at %v (%.1f m from AP)\n", a.Local, a.Pos, a.Pos.Dist(pos))
		}
		for _, j := range dep.ClientsOf(ap) {
			fmt.Printf("  client %d at %v (%.1f m from AP)\n", j, dep.Clients[j], dep.Clients[j].Dist(pos))
		}
	}
	if *drawMap {
		render(dep)
	}
	if *traceOut != "" {
		if err := record(dep); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d CSI frames to %s\n", *frames, *traceOut)
	}
}

func build(tmode topology.Mode) (*topology.Deployment, error) {
	cfg := topology.DefaultConfig(tmode)
	switch *nAPs {
	case 1:
		return topology.SingleAP(cfg, rng.New(*seed)), nil
	case 3:
		return topology.ThreeAPTestbed(cfg, rng.New(*seed)), nil
	case 8:
		return topology.LargeScale(topology.DefaultLargeScale(tmode), rng.New(*seed))
	default:
		return nil, fmt.Errorf("midas-topo: unsupported AP count %d", *nAPs)
	}
}

// render draws APs (A), antennas (t) and clients (c) on a character grid.
func render(dep *topology.Deployment) {
	minX, minY := 1e18, 1e18
	maxX, maxY := -1e18, -1e18
	expand := func(p geom.Point) {
		minX, minY = min(minX, p.X), min(minY, p.Y)
		maxX, maxY = max(maxX, p.X), max(maxY, p.Y)
	}
	for _, p := range dep.APs {
		expand(p)
	}
	for _, a := range dep.Antennas {
		expand(a.Pos)
	}
	for _, c := range dep.Clients {
		expand(c)
	}
	const cols, rows = 72, 28
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", cols))
	}
	put := func(p geom.Point, ch byte) {
		cx := int((p.X - minX) / (maxX - minX + 1e-9) * (cols - 1))
		cy := int((p.Y - minY) / (maxY - minY + 1e-9) * (rows - 1))
		grid[rows-1-cy][cx] = ch
	}
	for _, c := range dep.Clients {
		put(c, 'c')
	}
	for _, a := range dep.Antennas {
		put(a.Pos, 't')
	}
	for _, p := range dep.APs {
		put(p, 'A')
	}
	fmt.Printf("map %.0f×%.0f m (A=AP, t=antenna, c=client):\n", maxX-minX, maxY-minY)
	for _, row := range grid {
		fmt.Println(string(row))
	}
}

func record(dep *topology.Deployment) error {
	tr, err := sim.RecordDeployment(dep, channel.Default(), *frames, rng.New(*seed+7))
	if err != nil {
		return err
	}
	f, err := os.Create(*traceOut)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
